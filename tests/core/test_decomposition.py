"""Tests for the shared Benders/KAC slave-problem machinery."""

import numpy as np
import pytest

from repro.core.decomposition import SlaveProblem
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem
from repro.core.slices import URLLC_TEMPLATE, make_requests
from tests.conftest import low_load_forecasts


@pytest.fixture
def urllc_problem(tiny_topology, tiny_path_set):
    requests = make_requests(URLLC_TEMPLATE, 6)
    return ACRRProblem(
        tiny_topology,
        tiny_path_set,
        requests,
        low_load_forecasts(requests, fraction=0.8, sigma=0.2),
    )


def accept_all_edge(problem) -> np.ndarray:
    x = np.zeros(problem.num_items)
    for item in problem.items:
        if item.path.compute_unit == "edge-cu":
            x[item.index] = 1.0
    return x


class TestSlaveEvaluation:
    def test_feasible_for_empty_admission(self, urllc_problem):
        slave = SlaveProblem(urllc_problem)
        outcome = slave.evaluate(np.zeros(urllc_problem.num_items))
        assert outcome.feasible
        assert outcome.objective == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(outcome.z, 0.0)

    def test_infeasible_when_over_admitting(self, urllc_problem):
        # 6 uRLLC slices at ~80% load need more edge CPUs than available.
        slave = SlaveProblem(urllc_problem)
        outcome = slave.evaluate(accept_all_edge(urllc_problem))
        assert not outcome.feasible
        assert outcome.infeasibility > 0
        assert np.any(outcome.ray > 0)

    def test_feasible_outcome_reservations_within_bounds(self, embb_problem):
        slave = SlaveProblem(embb_problem)
        x = accept_all_edge(embb_problem)
        outcome = slave.evaluate(x)
        assert outcome.feasible
        for item in embb_problem.items:
            if x[item.index] > 0.5:
                assert item.lambda_hat_mbps - 1e-6 <= outcome.z[item.index]
                assert outcome.z[item.index] <= item.sla_mbps + 1e-6
            else:
                assert outcome.z[item.index] == pytest.approx(0.0, abs=1e-6)

    def test_objective_lower_bound_is_valid(self, embb_problem):
        slave = SlaveProblem(embb_problem)
        bound = slave.objective_lower_bound()
        outcome = slave.evaluate(accept_all_edge(embb_problem))
        assert outcome.objective >= bound - 1e-9


class TestCuts:
    def test_feasibility_cut_separates_infeasible_point(self, urllc_problem):
        slave = SlaveProblem(urllc_problem)
        x_bad = accept_all_edge(urllc_problem)
        outcome = slave.evaluate(x_bad)
        coeff, rhs = slave.cut_from_multipliers(outcome.ray)
        # The cut must be violated by the infeasible point...
        assert float(coeff @ x_bad) < rhs - 1e-9
        # ...and satisfied by the optimal (feasible) admission vector.
        optimal = DirectMILPSolver().solve(urllc_problem)
        x_opt = np.zeros(urllc_problem.num_items)
        for tenant_index, request in enumerate(urllc_problem.requests):
            alloc = optimal.allocations[request.name]
            if not alloc.accepted:
                continue
            for item in urllc_problem.items_of_tenant(tenant_index):
                if item.path.base_station in alloc.paths and (
                    alloc.paths[item.path.base_station].nodes == item.path.nodes
                ):
                    x_opt[item.index] = 1.0
        assert float(coeff @ x_opt) >= rhs - 1e-6

    def test_knapsack_weights_are_cut_rearrangement(self, urllc_problem):
        slave = SlaveProblem(urllc_problem)
        outcome = slave.evaluate(accept_all_edge(urllc_problem))
        coeff, rhs = slave.cut_from_multipliers(outcome.ray)
        weights, capacity = slave.knapsack_weights(outcome.ray)
        assert np.allclose(weights, -coeff)
        assert capacity == pytest.approx(-rhs)

    def test_rhs_parametrisation(self, embb_problem):
        slave = SlaveProblem(embb_problem)
        x = np.zeros(embb_problem.num_items)
        assert np.allclose(slave.rhs(x), slave.h0)
        x[0] = 1.0
        assert not np.allclose(slave.rhs(x), slave.h0)
