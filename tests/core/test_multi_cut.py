"""Multi-cut Benders disaggregation: blocks, lazy cut storage, typed errors.

Unit-level companions to the differential sweep in
``tests/differential/test_multi_cut_differential.py``: the per-tenant block
relaxation must lower-bound the joint slave (the soundness inequality
``q(x) >= sum_b q_b(x)``), the master must accumulate cut rows lazily
instead of re-stacking the whole CSR matrix per cut, an essentially-feasible
LP failure must raise the typed :class:`SlaveNumericalError`, and a
wall-clock-truncated solve must say so in its stats.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.core.benders import BendersSolver, _MasterState
from repro.core.decomposition import (
    SlaveNumericalError,
    SlaveProblem,
    evaluate_block,
)
from repro.core.lpsolver import LPSolution
from repro.core.milp_solver import DirectMILPSolver
from repro.scenarios import decision_fingerprint
from repro.utils.executors import SerialExecutor, ThreadPoolRunExecutor


def accept_all_edge(problem) -> np.ndarray:
    x = np.zeros(problem.num_items)
    for item in problem.items:
        if item.path.compute_unit == "edge-cu":
            x[item.index] = 1.0
    return x


class TestResourceBlocks:
    def test_blocks_partition_the_items_by_tenant(self, mixed_problem):
        blocks = mixed_problem.resource_blocks()
        assert len(blocks) == len(mixed_problem.requests)
        covered = sorted(i for block in blocks for i in block.item_indices)
        assert covered == list(range(mixed_problem.num_items))
        for block in blocks:
            expected = [
                item.index for item in mixed_problem.items_of_tenant(block.tenant_index)
            ]
            assert list(block.item_indices) == expected

    def test_tenant_partition_covers_every_tenant_once(self, mixed_problem):
        groups = mixed_problem.tenant_partition()
        covered = sorted(t for group in groups for t in group)
        assert covered == list(range(len(mixed_problem.requests)))

    def test_uncontended_capacity_rows_never_couple(self, mixed_problem):
        # A row with room for every tenant's simultaneous SLA worst case can
        # never bind, so it must not appear in any block's contendable set.
        mask = mixed_problem.contendable_capacity_rows()
        capacity = mixed_problem.capacity_block()
        worst = capacity.a_x.dot(np.ones(mixed_problem.num_items)) + capacity.a_z.dot(
            np.array([item.sla_mbps for item in mixed_problem.items])
        )
        for row in np.flatnonzero(~mask):
            assert worst[row] <= capacity.upper[row] + 1e-6

    def test_block_objectives_lower_bound_the_joint_slave(self, embb_problem):
        # The soundness inequality behind the disaggregation: each block
        # restricts the slave to one tenant's columns while keeping the full
        # right-hand side, a relaxation, so the block optima sum to at most
        # the joint slave optimum at the same admission vector.
        slave = SlaveProblem(embb_problem)
        x = accept_all_edge(embb_problem)
        joint = slave.evaluate(x)
        assert joint.feasible
        outcomes = slave.evaluate_blocks(x)
        assert all(outcome.feasible for outcome in outcomes)
        assert sum(o.objective for o in outcomes) <= joint.objective + 1e-8

    def test_block_cuts_are_valid_at_their_generating_point(self, embb_problem):
        slave = SlaveProblem(embb_problem)
        x = accept_all_edge(embb_problem)
        for block, outcome in zip(slave.blocks(), slave.evaluate_blocks(x)):
            assert outcome.feasible
            coeff, rhs = slave.cut_from_block_multipliers(block, outcome.duals)
            # theta_b + coeff' x >= rhs holds with theta_b = q_b(x): LP
            # duality makes it tight at the generating point.
            assert outcome.objective + float(coeff @ x) >= rhs - 1e-8

    def test_block_fanout_matches_serial_evaluation(self, mixed_problem):
        slave = SlaveProblem(mixed_problem)
        x = accept_all_edge(mixed_problem)
        serial = slave.evaluate_blocks(x, executor=SerialExecutor())
        pooled = slave.evaluate_blocks(x, executor=ThreadPoolRunExecutor(4))
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert a.block_index == b.block_index
            assert a.feasible == b.feasible
            assert a.objective == b.objective  # bit-identical, not approx
            assert np.array_equal(a.duals, b.duals)


class TestLazyCutAccumulation:
    """Satellite: ``add_cut`` must queue rows, not re-stack the matrix."""

    def _master(self, problem):
        slave = SlaveProblem(problem)
        return _MasterState(
            problem,
            problem.objective_x(),
            np.array([slave.objective_lower_bound()]),
        )

    def test_add_cut_does_not_stack(self, embb_problem):
        master = self._master(embb_problem)
        for k in range(10):
            master.add_cut(np.zeros(embb_problem.num_items), -float(k), True)
        assert master.num_cuts == 10
        assert master._cut_matrix is None
        assert len(master._pending_rows) == 10

    def test_cut_rows_folds_pending_once_and_caches(self, embb_problem):
        master = self._master(embb_problem)
        for k in range(5):
            master.add_cut(np.zeros(embb_problem.num_items), -float(k), True)
        matrix, rhs = master.cut_rows()
        assert matrix.shape == (5, embb_problem.num_items + 1)
        assert list(rhs) == [-float(k) for k in range(5)]
        assert not master._pending_rows
        # No new cuts: the folded matrix is returned as-is, no re-stacking.
        again, _ = master.cut_rows()
        assert again is matrix
        # New cuts stack on top of the cached matrix, preserving row order.
        master.add_cut(np.zeros(embb_problem.num_items), -99.0, True)
        grown, rhs = master.cut_rows()
        assert grown.shape[0] == 6
        assert rhs[-1] == -99.0

    def test_vstack_calls_are_linear_in_solves_not_cuts(self, embb_problem, monkeypatch):
        # The O(n^2) bug: one vstack per add_cut.  Fixed behavior: one
        # vstack per cut_rows() call that found pending rows.
        calls = []
        real_vstack = sparse.vstack

        def counting_vstack(blocks, *args, **kwargs):
            calls.append(len(blocks))
            return real_vstack(blocks, *args, **kwargs)

        master = self._master(embb_problem)
        monkeypatch.setattr("repro.core.benders.sparse.vstack", counting_vstack)
        for k in range(50):
            master.add_cut(np.zeros(embb_problem.num_items), -float(k), True)
        assert calls == []  # queueing is stack-free
        master.cut_rows()
        assert len(calls) == 1  # one fold for the whole batch

    def test_multi_theta_master_pads_cuts_correctly(self, mixed_problem):
        slave = SlaveProblem(mixed_problem)
        lowers = np.array([block.theta_lower for block in slave.blocks()])
        master = _MasterState(mixed_problem, mixed_problem.objective_x(), lowers)
        assert master.num_thetas == len(lowers)
        n = mixed_problem.num_items
        master.add_cut(np.zeros(n), 0.0, True)  # aggregate: all surrogates
        master.add_cut(np.zeros(n), 0.0, True, theta_indices=(2,))
        master.add_cut(np.zeros(n), 0.0, False)  # feasibility: none
        matrix, _ = master.cut_rows()
        theta_part = matrix.toarray()[:, n:]
        assert list(theta_part[0]) == [1.0] * master.num_thetas
        assert theta_part[1].sum() == 1.0 and theta_part[1][2] == 1.0
        assert not theta_part[2].any()


class TestSlaveNumericalError:
    """Satellite: an essentially-feasible LP failure raises a typed error."""

    @staticmethod
    def _failed_lp(*args, **kwargs):
        d = args[0]
        num_rows = len(args[2])
        return LPSolution(
            success=False,
            status="numerical breakdown",
            objective=float("nan"),
            primal=np.zeros(len(d)),
            duals_upper=np.zeros(num_rows),
            infeasible=False,
        )

    def test_evaluate_raises_typed_error_on_feasible_failure(
        self, embb_problem, monkeypatch
    ):
        # x = 0 is trivially slave-feasible, so when the LP claims failure
        # the phase-1 certificate finds ~zero infeasibility: neither an
        # optimality nor a feasibility cut would be honest.  The pre-fix
        # code raised a bare RuntimeError here despite a comment promising
        # an infeasible outcome; now the error is typed so the safeguard
        # chain can catch it without matching on strings.
        monkeypatch.setattr("repro.core.decomposition.solve_lp", self._failed_lp)
        slave = SlaveProblem(embb_problem)
        with pytest.raises(SlaveNumericalError, match="numerical breakdown"):
            slave.evaluate(np.zeros(embb_problem.num_items))

    def test_block_evaluation_raises_the_same_typed_error(
        self, embb_problem, monkeypatch
    ):
        monkeypatch.setattr("repro.core.decomposition.solve_lp", self._failed_lp)
        block = SlaveProblem(embb_problem).blocks()[0]
        with pytest.raises(SlaveNumericalError):
            evaluate_block(block, np.zeros(embb_problem.num_items))

    def test_error_is_a_runtime_error_for_the_safeguard_chain(self):
        # The safeguard chain's fall-through tier catches RuntimeError; the
        # typed subclass must stay inside that net (and is deterministic,
        # so it must NOT be a TransientSolverError retry candidate).
        assert issubclass(SlaveNumericalError, RuntimeError)


class TestTimeTruncation:
    """Satellite: a budget-stopped solve must say so, not just look odd."""

    def test_truncated_solve_surfaces_the_flag_and_message(self, mixed_problem):
        solver = BendersSolver(
            tolerance=1e-15,
            relative_tolerance=1e-15,
            max_iterations=50,
            master_time_limit_s=None,
            time_limit_s=1e-9,
            warm_start=False,
        )
        decision = solver.solve(mixed_problem)
        stats = decision.stats
        assert stats.time_truncated
        assert not stats.optimal
        assert "time limit reached" in stats.message
        assert "not certified" in stats.message

    def test_untruncated_solve_keeps_the_flag_clear(self, mixed_problem):
        decision = BendersSolver(
            max_iterations=30,
            master_time_limit_s=None,
            time_limit_s=None,
            warm_start=False,
        ).solve(mixed_problem)
        assert not decision.stats.time_truncated
        assert "time limit" not in decision.stats.message


class TestMultiCutSolver:
    def test_multi_cut_matches_single_cut_and_milp(self, mixed_problem):
        kwargs = {
            "tolerance": 1e-9,
            "relative_tolerance": 1e-9,
            "max_iterations": 30,
            "master_time_limit_s": None,
            "time_limit_s": None,
            "warm_start": False,
        }
        single = BendersSolver(**kwargs).solve(mixed_problem)
        multi = BendersSolver(multi_cut=True, **kwargs).solve(mixed_problem)
        milp = DirectMILPSolver(time_limit_s=None, mip_rel_gap=1e-9).solve(
            mixed_problem
        )
        assert multi.expected_net_reward == pytest.approx(
            milp.expected_net_reward, abs=1e-6
        )
        assert multi.expected_net_reward == pytest.approx(
            single.expected_net_reward, abs=1e-6
        )

    def test_multi_cut_decision_is_worker_count_invariant(self, mixed_problem):
        def solve(executor):
            return BendersSolver(
                tolerance=1e-9,
                relative_tolerance=1e-9,
                max_iterations=30,
                master_time_limit_s=None,
                time_limit_s=None,
                warm_start=False,
                multi_cut=True,
                executor=executor,
            ).solve(mixed_problem)

        fingerprints = {
            decision_fingerprint(solve(executor))
            for executor in (
                None,
                SerialExecutor(),
                ThreadPoolRunExecutor(1),
                ThreadPoolRunExecutor(2),
                ThreadPoolRunExecutor(4),
            )
        }
        assert len(fingerprints) == 1
