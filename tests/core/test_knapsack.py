"""Tests for the first-fit-decreasing knapsack solver used by KAC."""

from repro.core.knapsack import KnapsackItem, solve_knapsack_ffd


def keys(selection):
    return {item.key for item in selection}


class TestSelection:
    def test_respects_capacity(self):
        items = [
            KnapsackItem(key="a", value=10.0, weight=6.0),
            KnapsackItem(key="b", value=9.0, weight=5.0),
            KnapsackItem(key="c", value=1.0, weight=5.0),
        ]
        chosen = solve_knapsack_ffd(items, capacity=11.0)
        total_weight = sum(i.weight for i in chosen)
        assert total_weight <= 11.0
        assert keys(chosen) == {"a", "b"}

    def test_density_ordering(self):
        items = [
            KnapsackItem(key="dense", value=5.0, weight=1.0),
            KnapsackItem(key="heavy", value=6.0, weight=10.0),
        ]
        chosen = solve_knapsack_ffd(items, capacity=10.0)
        # The denser item is packed first and the heavy one no longer fits.
        assert keys(chosen) == {"dense"}

    def test_zero_or_negative_weight_items_are_free(self):
        items = [
            KnapsackItem(key="free", value=1.0, weight=-2.0),
            KnapsackItem(key="paid", value=1.0, weight=3.0),
        ]
        chosen = solve_knapsack_ffd(items, capacity=3.0)
        assert keys(chosen) == {"free", "paid"}

    def test_non_positive_value_items_skipped(self):
        items = [KnapsackItem(key="useless", value=0.0, weight=1.0)]
        assert solve_knapsack_ffd(items, capacity=10.0) == []

    def test_empty_input(self):
        assert solve_knapsack_ffd([], capacity=5.0) == []


class TestGroupsAndMandatory:
    def test_one_item_per_group(self):
        items = [
            KnapsackItem(key="a1", value=5.0, weight=1.0, group="tenant-a"),
            KnapsackItem(key="a2", value=4.0, weight=1.0, group="tenant-a"),
            KnapsackItem(key="b1", value=3.0, weight=1.0, group="tenant-b"),
        ]
        chosen = solve_knapsack_ffd(items, capacity=10.0)
        assert keys(chosen) == {"a1", "b1"}

    def test_mandatory_selected_even_if_unprofitable(self):
        items = [
            KnapsackItem(key="must", value=-5.0, weight=4.0, mandatory=True),
            KnapsackItem(key="nice", value=3.0, weight=4.0),
        ]
        chosen = solve_knapsack_ffd(items, capacity=5.0)
        assert "must" in keys(chosen)
        # Capacity left after the mandatory item is 1.0 < 4.0.
        assert "nice" not in keys(chosen)

    def test_mandatory_respects_group_uniqueness(self):
        items = [
            KnapsackItem(key="m1", value=1.0, weight=1.0, group="g", mandatory=True),
            KnapsackItem(key="m2", value=1.0, weight=1.0, group="g", mandatory=True),
        ]
        chosen = solve_knapsack_ffd(items, capacity=10.0)
        assert len(chosen) == 1
