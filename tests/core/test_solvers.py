"""Tests for the AC-RR solvers: direct MILP, Benders, KAC and the baseline.

The central correctness claims are:

* the Benders decomposition converges to the same optimum as the direct MILP
  (Theorem 2);
* the KAC heuristic always returns a feasible admission set and is never
  better than the optimum;
* the no-overbooking baseline reserves the full SLA and therefore admits
  fewer tenants when the system is loaded.
"""

import pytest

from repro.core.baseline import NoOverbookingSolver
from repro.core.benders import BendersSolver
from repro.core.forecast_inputs import ForecastInput
from repro.core.kac import KACSolver
from repro.core.milp_solver import DirectMILPSolver
from repro.core.problem import ACRRProblem, ProblemOptions
from repro.core.slices import EMBB_TEMPLATE, MMTC_TEMPLATE, URLLC_TEMPLATE, make_requests
from tests.conftest import low_load_forecasts


def assert_decision_feasible(problem, decision):
    """Re-check every capacity constraint of the original problem."""
    caps = problem.topology.capacities()
    radio = {bs: 0.0 for bs in caps.radio_mhz}
    transport = {key: 0.0 for key in caps.transport_mbps}
    compute = {cu: 0.0 for cu in caps.compute_cpus}
    for name, alloc in decision.allocations.items():
        if not alloc.accepted:
            continue
        request = alloc.request
        for bs, mbps in alloc.reservations_mbps.items():
            radio[bs] += problem.topology.base_station(bs).mhz_for_bitrate(mbps)
            compute[alloc.compute_unit] += request.compute_cpus(mbps)
            for link in alloc.paths[bs].links:
                transport[link.key] += mbps * link.overhead
    slack = 1e-6
    for bs, used in radio.items():
        assert used <= caps.radio_mhz[bs] + slack
    for key, used in transport.items():
        assert used <= caps.transport_mbps[key] + slack
    for cu, used in compute.items():
        assert used <= caps.compute_cpus[cu] + slack


class TestDirectMILP:
    def test_radio_bound_admission_with_and_without_overbooking(self, embb_problem):
        overbooked = DirectMILPSolver().solve(embb_problem)
        baseline = NoOverbookingSolver().solve(embb_problem)
        # 150 Mb/s per BS fits 3 full 50 Mb/s SLAs, but 6 slices at ~20 % load.
        assert baseline.num_accepted == 3
        assert overbooked.num_accepted == 6
        assert_decision_feasible(embb_problem, overbooked)
        assert_decision_feasible(embb_problem, baseline)

    def test_reservations_between_forecast_and_sla(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        for name, alloc in decision.allocations.items():
            if not alloc.accepted:
                continue
            forecast = embb_problem.forecast(name)
            for mbps in alloc.reservations_mbps.values():
                assert forecast.lambda_hat_mbps - 1e-6 <= mbps <= alloc.request.sla_mbps + 1e-6

    def test_accepted_tenant_present_at_every_base_station(self, embb_problem):
        decision = DirectMILPSolver().solve(embb_problem)
        for alloc in decision.allocations.values():
            if alloc.accepted:
                assert set(alloc.paths) == set(embb_problem.base_station_names)
                cu_set = {path.compute_unit for path in alloc.paths.values()}
                assert len(cu_set) == 1  # constraint (6): one anchoring CU

    def test_urllc_anchored_at_edge(self, mixed_problem):
        decision = DirectMILPSolver().solve(mixed_problem)
        for alloc in decision.allocations.values():
            if alloc.accepted and alloc.request.template.name == "uRLLC":
                assert alloc.compute_unit == "edge-cu"

    def test_deficit_relaxation_keeps_committed_feasible(self, tiny_topology, tiny_path_set):
        # Eight committed mMTC slices need ~8 * 40 = 320 CPUs at (almost) full
        # load, but edge + core CUs only offer 40 + 200 = 240: without the
        # big-M relaxation of Section 3.4 this instance is infeasible.
        requests = [r.as_committed() for r in make_requests(MMTC_TEMPLATE, 8)]
        forecasts = {
            r.name: ForecastInput(lambda_hat_mbps=9.99, sigma_hat=0.1) for r in requests
        }
        problem = ACRRProblem(
            tiny_topology,
            tiny_path_set,
            requests,
            forecasts,
            options=ProblemOptions(allow_deficit=True),
        )
        decision = DirectMILPSolver().solve(problem)
        assert decision.num_accepted == 8
        assert decision.total_deficit > 0.0
        assert decision.deficits["compute"] > 0.0


class TestBenders:
    def test_matches_milp_on_radio_bound_instance(self, embb_problem):
        milp = DirectMILPSolver().solve(embb_problem)
        benders = BendersSolver(max_iterations=200).solve(embb_problem)
        assert benders.objective_value == pytest.approx(milp.objective_value, abs=1e-3)
        assert benders.num_accepted == milp.num_accepted
        assert benders.stats.optimal
        assert_decision_feasible(embb_problem, benders)

    def test_matches_milp_on_mixed_instance(self, mixed_problem):
        milp = DirectMILPSolver().solve(mixed_problem)
        benders = BendersSolver(max_iterations=200).solve(mixed_problem)
        assert benders.objective_value == pytest.approx(milp.objective_value, abs=1e-3)
        assert_decision_feasible(mixed_problem, benders)

    def test_generates_cuts(self, embb_problem):
        decision = BendersSolver(max_iterations=200).solve(embb_problem)
        assert decision.stats.cuts_optimality + decision.stats.cuts_feasibility > 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BendersSolver(tolerance=0.0)
        with pytest.raises(ValueError):
            BendersSolver(max_iterations=0)


class TestKAC:
    def test_feasible_and_not_better_than_optimal(self, embb_problem):
        optimal = DirectMILPSolver().solve(embb_problem)
        kac = KACSolver().solve(embb_problem)
        assert_decision_feasible(embb_problem, kac)
        # Minimisation problem: the heuristic can never beat the optimum.
        assert kac.objective_value >= optimal.objective_value - 1e-6

    def test_capacity_bound_instance(self, tiny_topology, tiny_path_set):
        # Heavy uRLLC load: only a subset fits in the edge CU.
        requests = make_requests(URLLC_TEMPLATE, 8)
        forecasts = low_load_forecasts(requests, fraction=0.8, sigma=0.2)
        problem = ACRRProblem(tiny_topology, tiny_path_set, requests, forecasts)
        optimal = DirectMILPSolver().solve(problem)
        kac = KACSolver().solve(problem)
        assert_decision_feasible(problem, kac)
        assert 0 < kac.num_accepted <= optimal.num_accepted

    def test_committed_slices_always_kept(self, tiny_topology, tiny_path_set):
        committed = [r.as_committed() for r in make_requests(EMBB_TEMPLATE, 2)]
        new = make_requests(EMBB_TEMPLATE, 4, prefix="new")
        requests = committed + new
        problem = ACRRProblem(
            tiny_topology, tiny_path_set, requests, low_load_forecasts(requests)
        )
        decision = KACSolver().solve(problem)
        for request in committed:
            assert decision.is_accepted(request.name)

    def test_stats_identify_heuristic(self, embb_problem):
        decision = KACSolver().solve(embb_problem)
        assert decision.stats.solver == "kac"
        assert not decision.stats.optimal


class TestNoOverbooking:
    def test_reserves_full_sla(self, embb_problem):
        decision = NoOverbookingSolver().solve(embb_problem)
        for alloc in decision.allocations.values():
            if alloc.accepted:
                for mbps in alloc.reservations_mbps.values():
                    assert mbps == pytest.approx(alloc.request.sla_mbps)

    def test_idempotent_on_no_overbooking_problem(self, embb_problem):
        baseline_problem = embb_problem.without_overbooking()
        a = NoOverbookingSolver().solve(baseline_problem)
        b = NoOverbookingSolver().solve(embb_problem)
        assert a.num_accepted == b.num_accepted

    def test_stats_renamed(self, embb_problem):
        decision = NoOverbookingSolver().solve(embb_problem)
        assert decision.stats.solver == "no-overbooking"
