"""Tests for slice templates and requests (Table 1)."""

import pytest

from repro.core.slices import (
    EMBB_TEMPLATE,
    MMTC_TEMPLATE,
    TEMPLATES,
    URLLC_TEMPLATE,
    SliceRequest,
    SliceTemplate,
    make_requests,
)


class TestTable1Templates:
    def test_embb_row(self):
        assert EMBB_TEMPLATE.reward == 1.0
        assert EMBB_TEMPLATE.latency_tolerance_ms == 30.0
        assert EMBB_TEMPLATE.sla_mbps == 50.0
        assert EMBB_TEMPLATE.compute_cpus(100.0) == 0.0  # s = {0, 0}

    def test_mmtc_row(self):
        assert MMTC_TEMPLATE.reward == pytest.approx(3.0)  # 1 + b with b = 2
        assert MMTC_TEMPLATE.sla_mbps == 10.0
        assert MMTC_TEMPLATE.default_relative_std == 0.0
        assert MMTC_TEMPLATE.compute_cpus(10.0) == pytest.approx(20.0)

    def test_urllc_row(self):
        assert URLLC_TEMPLATE.reward == pytest.approx(2.2)  # 2 + b with b = 0.2
        assert URLLC_TEMPLATE.latency_tolerance_ms == 5.0
        assert URLLC_TEMPLATE.sla_mbps == 25.0
        assert URLLC_TEMPLATE.max_compute_cpus == pytest.approx(5.0)

    def test_registry_contains_all_types(self):
        assert set(TEMPLATES) == {"eMBB", "mMTC", "uRLLC"}

    def test_template_validation(self):
        with pytest.raises(ValueError):
            SliceTemplate(
                name="bad",
                reward=0.0,
                latency_tolerance_ms=10.0,
                sla_mbps=10.0,
                compute_baseline_cpus=0.0,
                compute_cpus_per_mbps=0.0,
            )

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            EMBB_TEMPLATE.compute_cpus(-1.0)


class TestSliceRequest:
    def test_penalty_rate_definition(self):
        request = SliceRequest(name="t", template=EMBB_TEMPLATE, penalty_factor=4.0)
        # K = m * R / Lambda.
        assert request.penalty_rate_per_mbps == pytest.approx(4.0 * 1.0 / 50.0)

    def test_ten_percent_shortfall_costs_ten_percent_of_reward(self):
        request = SliceRequest(name="t", template=EMBB_TEMPLATE, penalty_factor=1.0)
        shortfall = 0.1 * request.sla_mbps
        assert request.penalty_rate_per_mbps * shortfall == pytest.approx(0.1 * request.reward)

    def test_activity_window(self):
        request = SliceRequest(
            name="t", template=EMBB_TEMPLATE, duration_epochs=4, arrival_epoch=2
        )
        assert not request.is_active(1)
        assert request.is_active(2)
        assert request.is_active(5)
        assert not request.is_active(6)
        assert request.expires_at() == 6

    def test_as_committed(self):
        request = SliceRequest(name="t", template=EMBB_TEMPLATE)
        committed = request.as_committed()
        assert committed.committed and not request.committed
        assert committed.name == request.name

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            SliceRequest(name="t", template=EMBB_TEMPLATE, duration_epochs=0)

    def test_invalid_arrival(self):
        with pytest.raises(ValueError):
            SliceRequest(name="t", template=EMBB_TEMPLATE, arrival_epoch=-1)


class TestMakeRequests:
    def test_names_are_unique(self):
        requests = make_requests(EMBB_TEMPLATE, 5)
        assert len({r.name for r in requests}) == 5

    def test_prefix(self):
        requests = make_requests(URLLC_TEMPLATE, 2, prefix="tenant")
        assert requests[0].name == "tenant-0"

    def test_zero_count(self):
        assert make_requests(EMBB_TEMPLATE, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_requests(EMBB_TEMPLATE, -1)
