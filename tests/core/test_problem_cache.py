"""Structure-cache correctness: skeleton reuse must be invisible.

`ProblemStructureCache` rebinds the previous epoch's `ACRRProblem` skeleton
when only the forecasts changed.  These tests pin down the two contracts
that make that safe: (1) a cached build produces *identical* matrices,
objectives and items to a cold build, and (2) any structural change --
request set, committed flags, path set, options, topology -- invalidates
the cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ACRRProblem, ProblemOptions, ProblemStructureCache
from repro.core.slices import EMBB_TEMPLATE, URLLC_TEMPLATE, make_requests
from repro.topology.paths import compute_path_sets

from tests.conftest import build_tiny_topology, low_load_forecasts


@pytest.fixture
def topology():
    return build_tiny_topology()


@pytest.fixture
def path_set(topology):
    return compute_path_sets(topology, k=3)


@pytest.fixture
def requests():
    return make_requests(EMBB_TEMPLATE, 4, duration_epochs=24)


def other_forecasts(requests, fraction=0.6, sigma=0.4):
    return low_load_forecasts(requests, fraction=fraction, sigma=sigma)


def assert_same_block(cached_block, cold_block):
    for attr in ("a_x", "a_z", "a_y"):
        cached = getattr(cached_block, attr)
        cold = getattr(cold_block, attr)
        assert cached.shape == cold.shape
        assert (cached != cold).nnz == 0, f"{attr} differs"
    assert np.array_equal(cached_block.lower, cold_block.lower)
    assert np.array_equal(cached_block.upper, cold_block.upper)
    assert cached_block.labels == cold_block.labels


def assert_equivalent_problems(cached: ACRRProblem, cold: ACRRProblem):
    assert cached.num_items == cold.num_items
    assert cached.items == cold.items
    assert_same_block(cached.capacity_block(), cold.capacity_block())
    assert_same_block(cached.selection_block(), cold.selection_block())
    assert_same_block(cached.coupling_block(), cold.coupling_block())
    assert np.array_equal(cached.objective_x(), cold.objective_x())
    assert np.array_equal(cached.objective_y(), cold.objective_y())
    for request in cold.requests:
        assert cached.forecast(request.name) == cold.forecast(request.name)


class TestWithForecasts:
    def test_cached_build_matches_cold_build(self, topology, path_set, requests):
        base = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=low_load_forecasts(requests),
        )
        # Prime the forecast-independent block caches so they are shared.
        base.capacity_block()
        base.selection_block()
        new_forecasts = other_forecasts(requests)
        cached = base.with_forecasts(requests, new_forecasts)
        cold = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=new_forecasts,
        )
        assert_equivalent_problems(cached, cold)

    def test_missing_forecasts_fall_back_to_pessimistic(
        self, topology, path_set, requests
    ):
        base = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=low_load_forecasts(requests),
        )
        cached = base.with_forecasts(requests, {})
        cold = ACRRProblem(
            topology=topology, path_set=path_set, requests=requests, forecasts={}
        )
        assert_equivalent_problems(cached, cold)

    def test_swaps_in_fresh_request_objects(self, topology, path_set, requests):
        base = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=low_load_forecasts(requests),
        )
        fresh = make_requests(EMBB_TEMPLATE, 4, duration_epochs=24)
        fresh[0].metadata["preferred_compute_unit"] = "edge-cu"
        clone = base.with_forecasts(fresh, low_load_forecasts(fresh))
        assert clone.requests[0] is fresh[0]
        assert clone.items[0].tenant is fresh[clone.items[0].tenant_index]

    def test_rejects_structurally_different_requests(
        self, topology, path_set, requests
    ):
        base = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=low_load_forecasts(requests),
        )
        committed = [r.as_committed() for r in requests]
        with pytest.raises(ValueError):
            base.with_forecasts(committed, low_load_forecasts(committed))


class TestProblemStructureCache:
    def test_hit_on_unchanged_structure(self, topology, path_set, requests):
        cache = ProblemStructureCache()
        options = ProblemOptions()
        first = cache.build(
            topology, path_set, requests, low_load_forecasts(requests), options
        )
        second = cache.build(
            topology, path_set, requests, other_forecasts(requests), options
        )
        assert (cache.hits, cache.misses) == (1, 1)
        cold = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=other_forecasts(requests),
            options=options,
        )
        assert_equivalent_problems(second, cold)
        # The skeleton is genuinely shared, not rebuilt.
        assert second._items_by_tenant is first._items_by_tenant

    def test_invalidated_by_request_set_change(self, topology, path_set, requests):
        cache = ProblemStructureCache()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        grown = requests + make_requests(URLLC_TEMPLATE, 1, prefix="urllc-extra")
        cache.build(topology, path_set, grown, low_load_forecasts(grown))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_invalidated_by_committed_flags(self, topology, path_set, requests):
        cache = ProblemStructureCache()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        committed = [r.as_committed() for r in requests]
        problem = cache.build(
            topology, path_set, committed, low_load_forecasts(committed)
        )
        assert (cache.hits, cache.misses) == (0, 2)
        assert all(item.tenant.committed for item in problem.items)

    def test_invalidated_by_path_set_identity(self, topology, requests):
        cache = ProblemStructureCache()
        first_paths = compute_path_sets(topology, k=3)
        second_paths = compute_path_sets(topology, k=3)
        cache.build(topology, first_paths, requests, low_load_forecasts(requests))
        cache.build(topology, second_paths, requests, low_load_forecasts(requests))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_invalidated_by_options_change(self, topology, path_set, requests):
        cache = ProblemStructureCache()
        cache.build(
            topology, path_set, requests, low_load_forecasts(requests),
            ProblemOptions(allow_deficit=False),
        )
        cache.build(
            topology, path_set, requests, low_load_forecasts(requests),
            ProblemOptions(allow_deficit=True),
        )
        assert (cache.hits, cache.misses) == (0, 2)

    def test_invalidated_by_topology_identity(self, path_set, requests):
        cache = ProblemStructureCache()
        first = build_tiny_topology()
        second = build_tiny_topology()
        paths_first = compute_path_sets(first, k=3)
        cache.build(first, paths_first, requests, low_load_forecasts(requests))
        cache.build(second, paths_first, requests, low_load_forecasts(requests))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_invalidate_clears_the_cache(self, topology, path_set, requests):
        cache = ProblemStructureCache()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        cache.invalidate()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        assert (cache.hits, cache.misses) == (0, 2)


class TestSolverEquivalenceOnCachedProblems:
    def test_cached_problem_solves_to_the_same_decision(
        self, topology, path_set, requests
    ):
        from repro.core.milp_solver import DirectMILPSolver

        cache = ProblemStructureCache()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        cached = cache.build(
            topology, path_set, requests, other_forecasts(requests)
        )
        cold = ACRRProblem(
            topology=topology,
            path_set=path_set,
            requests=requests,
            forecasts=other_forecasts(requests),
        )
        assert cache.hits == 1
        solver = DirectMILPSolver()
        from_cached = solver.solve(cached)
        from_cold = solver.solve(cold)
        assert from_cached.objective_value == from_cold.objective_value
        assert from_cached.accepted_tenants == from_cold.accepted_tenants
        for name, allocation in from_cold.allocations.items():
            assert (
                from_cached.allocations[name].reservations_mbps
                == allocation.reservations_mbps
            )


class TestTopologyMutation:
    def test_in_place_topology_mutation_invalidates_the_cache(self, requests):
        from repro.topology.elements import BaseStation, TransportLink

        topology = build_tiny_topology()
        path_set = compute_path_sets(topology, k=3)
        cache = ProblemStructureCache()
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        # Mutate the topology in place: same object identity, new content.
        topology.add_base_station(BaseStation(name="bs-new", capacity_mhz=20.0))
        topology.add_link(
            TransportLink(endpoint_a="bs-new", endpoint_b="sw", capacity_mbps=1000.0)
        )
        cache.build(topology, path_set, requests, low_load_forecasts(requests))
        assert (cache.hits, cache.misses) == (0, 2)
