"""Tests for the MILP warm-start hint in the lpsolver wrapper."""

import numpy as np
import pytest
from scipy import optimize, sparse

from repro.core.lpsolver import solve_milp, validate_milp_hint


def knapsack(values=(5.0, 4.0, 3.0), weights=(2.0, 3.0, 1.0), capacity=4.0):
    """max v'x s.t. w'x <= capacity, x binary -- as a minimisation."""
    cost = -np.asarray(values)
    constraints = [
        optimize.LinearConstraint(
            sparse.csr_matrix(np.asarray(weights).reshape(1, -1)), -np.inf, capacity
        )
    ]
    n = len(values)
    return cost, constraints, np.ones(n), np.zeros(n), np.ones(n)


class TestValidateHint:
    def test_feasible_integral_hint_accepted(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert validate_milp_hint(
            np.array([1.0, 0.0, 1.0]), constraints, integrality, lower, upper
        )

    def test_capacity_violation_rejected(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert not validate_milp_hint(
            np.array([1.0, 1.0, 1.0]), constraints, integrality, lower, upper
        )

    def test_fractional_hint_rejected(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert not validate_milp_hint(
            np.array([0.5, 0.0, 1.0]), constraints, integrality, lower, upper
        )

    def test_out_of_bounds_hint_rejected(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert not validate_milp_hint(
            np.array([2.0, 0.0, 0.0]), constraints, integrality, lower, upper
        )

    def test_wrong_shape_rejected(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert not validate_milp_hint(
            np.array([1.0, 0.0]), constraints, integrality, lower, upper
        )


class TestSolveWithHint:
    def test_valid_hint_is_applied_and_optimum_unchanged(self):
        cost, constraints, integrality, lower, upper = knapsack()
        cold = solve_milp(cost, constraints, integrality, lower, upper)
        warm = solve_milp(
            cost, constraints, integrality, lower, upper,
            hint=np.array([1.0, 0.0, 1.0]),  # the true optimum (value 8)
        )
        assert warm.hint_applied
        assert warm.success
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert np.allclose(warm.values, cold.values)

    def test_suboptimal_hint_keeps_the_optimum_reachable(self):
        cost, constraints, integrality, lower, upper = knapsack()
        warm = solve_milp(
            cost, constraints, integrality, lower, upper,
            hint=np.array([0.0, 1.0, 1.0]),  # feasible, value 7 < 8
        )
        assert warm.hint_applied
        assert warm.objective == pytest.approx(-8.0, abs=1e-9)

    def test_invalid_hint_is_ignored(self):
        cost, constraints, integrality, lower, upper = knapsack()
        warm = solve_milp(
            cost, constraints, integrality, lower, upper,
            hint=np.array([1.0, 1.0, 1.0]),  # violates the capacity
        )
        assert not warm.hint_applied
        assert warm.objective == pytest.approx(-8.0, abs=1e-9)

    def test_no_hint_field_defaults_false(self):
        cost, constraints, integrality, lower, upper = knapsack()
        assert not solve_milp(cost, constraints, integrality, lower, upper).hint_applied
