"""Tests for the AC-RR problem builder (objective, constraints, indexing)."""

import numpy as np
import pytest

from repro.core.forecast_inputs import ForecastInput
from repro.core.problem import ACRRProblem, InfeasibleProblemError, ProblemOptions
from repro.core.slices import EMBB_TEMPLATE, URLLC_TEMPLATE, make_requests
from tests.conftest import build_tiny_topology, low_load_forecasts
from repro.topology.paths import compute_path_sets


class TestItemConstruction:
    def test_item_count(self, embb_problem):
        # 6 tenants x 2 BSs x 2 CUs x 1 path each.
        assert embb_problem.num_items == 24
        assert embb_problem.num_tenants == 6

    def test_delay_filtering_removes_core_for_urllc(self, tiny_topology, tiny_path_set):
        requests = make_requests(URLLC_TEMPLATE, 2)
        problem = ACRRProblem(
            tiny_topology, tiny_path_set, requests, low_load_forecasts(requests)
        )
        # The core CU sits behind a 20 ms link, above the 5 ms uRLLC budget.
        assert all(item.path.compute_unit == "edge-cu" for item in problem.items)

    def test_duplicate_tenant_names_rejected(self, tiny_topology, tiny_path_set):
        requests = make_requests(EMBB_TEMPLATE, 2)
        duplicated = [requests[0], requests[0]]
        with pytest.raises(ValueError, match="unique"):
            ACRRProblem(tiny_topology, tiny_path_set, duplicated, {})

    def test_empty_requests_rejected(self, tiny_topology, tiny_path_set):
        with pytest.raises(ValueError):
            ACRRProblem(tiny_topology, tiny_path_set, [], {})

    def test_missing_forecast_defaults_to_pessimistic(self, tiny_topology, tiny_path_set):
        requests = make_requests(EMBB_TEMPLATE, 1)
        problem = ACRRProblem(tiny_topology, tiny_path_set, requests, forecasts={})
        forecast = problem.forecast(requests[0].name)
        assert forecast.lambda_hat_mbps > 0.99 * requests[0].sla_mbps * 0.999
        assert forecast.sigma_hat == 1.0

    def test_reward_spread_over_base_stations(self, embb_problem):
        item = embb_problem.items[0]
        num_bs = len(embb_problem.base_station_names)
        assert item.reward_per_path == pytest.approx(item.tenant.reward / num_bs)
        assert item.penalty_rate_per_path == pytest.approx(
            item.tenant.penalty_rate_per_mbps / num_bs
        )

    def test_xi_uses_days(self, tiny_topology, tiny_path_set):
        requests = make_requests(EMBB_TEMPLATE, 1, duration_epochs=48)
        forecasts = {requests[0].name: ForecastInput(lambda_hat_mbps=10.0, sigma_hat=0.5)}
        problem = ACRRProblem(
            tiny_topology,
            tiny_path_set,
            requests,
            forecasts,
            options=ProblemOptions(epochs_per_day=24),
        )
        # 48 epochs = 2 days, so xi = 0.5 * 2.
        assert problem.items[0].xi == pytest.approx(1.0)


class TestObjective:
    def test_no_overbooking_objective_is_pure_reward(self, embb_problem):
        baseline = embb_problem.without_overbooking()
        cx = baseline.objective_x()
        cy = baseline.objective_y()
        assert np.allclose(cy, 0.0)
        for item in baseline.items:
            assert cx[item.index] == pytest.approx(-item.reward_per_path)

    def test_overbooking_y_coefficients_negative(self, embb_problem):
        assert np.all(embb_problem.objective_y() < 0.0)

    def test_evaluate_objective_full_reservation(self, embb_problem):
        # Accept one tenant on the edge CU at full SLA: objective = -R.
        x = np.zeros(embb_problem.num_items)
        z = np.zeros(embb_problem.num_items)
        tenant0 = embb_problem.items_of_tenant(0)
        for item in tenant0:
            if item.path.compute_unit == "edge-cu":
                x[item.index] = 1.0
                z[item.index] = item.sla_mbps
        value = embb_problem.evaluate_objective(x, z)
        assert value == pytest.approx(-embb_problem.requests[0].reward)

    def test_evaluate_objective_aggressive_reservation_costs_more(self, embb_problem):
        x = np.zeros(embb_problem.num_items)
        z_full = np.zeros(embb_problem.num_items)
        z_tight = np.zeros(embb_problem.num_items)
        for item in embb_problem.items_of_tenant(0):
            if item.path.compute_unit == "edge-cu":
                x[item.index] = 1.0
                z_full[item.index] = item.sla_mbps
                z_tight[item.index] = item.lambda_hat_mbps
        assert embb_problem.evaluate_objective(x, z_tight) > embb_problem.evaluate_objective(
            x, z_full
        )


class TestConstraintBlocks:
    def test_capacity_block_shapes(self, embb_problem):
        block = embb_problem.capacity_block()
        expected_rows = 2 + len(embb_problem.topology.links) + 2  # CUs + links + BSs
        assert block.num_rows == expected_rows
        assert block.a_z.shape == (expected_rows, embb_problem.num_items)
        assert len(block.labels) == expected_rows

    def test_capacity_rhs_matches_topology(self, embb_problem):
        block = embb_problem.capacity_block()
        caps = embb_problem.topology.capacities()
        by_label = dict(zip(block.labels, block.upper))
        assert by_label["radio:bs-0"] == caps.radio_mhz["bs-0"]
        assert by_label["compute:edge-cu"] == caps.compute_cpus["edge-cu"]

    def test_deficit_domains_align_with_capacity_rows(self, embb_problem):
        block = embb_problem.capacity_block()
        domains = embb_problem.deficit_domains()
        assert len(domains) == block.num_rows
        assert domains[0] == "compute"
        assert domains[-1] == "radio"

    def test_selection_block_rows(self, embb_problem):
        block = embb_problem.selection_block()
        # (5): one row per (tenant, BS) = 6 x 2; (6): per tenant, per CU, one
        # chained equality between the two BSs = 6 x 2.
        assert block.num_rows == 12 + 12

    def test_committed_tenant_forces_equality(self, tiny_topology, tiny_path_set):
        requests = [r.as_committed() for r in make_requests(EMBB_TEMPLATE, 1)]
        problem = ACRRProblem(
            tiny_topology, tiny_path_set, requests, low_load_forecasts(requests)
        )
        block = problem.selection_block()
        select_rows = [i for i, label in enumerate(block.labels) if label.startswith("select:")]
        assert all(block.lower[i] == 1.0 for i in select_rows)

    def test_coupling_block_has_five_rows_per_item(self, embb_problem):
        block = embb_problem.coupling_block()
        assert block.num_rows == 5 * embb_problem.num_items


class TestReservationBounds:
    def test_bounds_for_accepted_and_rejected(self, embb_problem):
        accepted = np.zeros(embb_problem.num_items)
        accepted[0] = 1.0
        lower, upper = embb_problem.reservation_bounds(accepted)
        item = embb_problem.items[0]
        assert lower[0] == pytest.approx(item.lambda_hat_mbps)
        assert upper[0] == pytest.approx(item.sla_mbps)
        assert lower[1] == upper[1] == 0.0

    def test_no_overbooking_bounds_pin_to_sla(self, embb_problem):
        baseline = embb_problem.without_overbooking()
        accepted = np.ones(baseline.num_items)
        lower, upper = baseline.reservation_bounds(accepted)
        assert np.allclose(lower, upper)


class TestInfeasibleConstruction:
    def test_unreachable_latency_raises(self):
        from repro.core.slices import SliceRequest, SliceTemplate

        topology = build_tiny_topology()
        path_set = compute_path_sets(topology, k=2)
        # A template whose latency tolerance is below the delay of every
        # candidate path: no admissible (tenant, path) pair can exist.
        impossible = SliceTemplate(
            name="impossible",
            reward=1.0,
            latency_tolerance_ms=1e-6,
            sla_mbps=10.0,
            compute_baseline_cpus=0.0,
            compute_cpus_per_mbps=0.0,
        )
        request = SliceRequest(name="t", template=impossible)
        with pytest.raises(InfeasibleProblemError):
            ACRRProblem(
                topology,
                path_set,
                [request],
                {request.name: ForecastInput(lambda_hat_mbps=1.0, sigma_hat=0.5)},
            )
