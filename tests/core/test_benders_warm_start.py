"""Unit tests for the Benders cross-epoch warm-start layer (CutPool)."""

import numpy as np
import pytest

from repro.core.benders import BendersSolver, CutPool, _MasterState, warm_start_key
from repro.core.decomposition import SlaveProblem
from repro.core.forecast_inputs import ForecastInput
from repro.core.problem import ACRRProblem
from repro.core.slices import EMBB_TEMPLATE, make_requests
from repro.topology.paths import compute_path_sets
from tests.conftest import build_tiny_topology


def small_problem(load_fraction=0.3, num_tenants=4, edge_cpus=12.0):
    topology = build_tiny_topology(
        num_base_stations=2,
        bs_capacity_mhz=22.0,
        link_capacity_mbps=900.0,
        edge_cpus=edge_cpus,
        core_cpus=90.0,
    )
    path_set = compute_path_sets(topology, k=2)
    requests = make_requests(EMBB_TEMPLATE, num_tenants, duration_epochs=24)
    forecasts = {
        request.name: ForecastInput(
            lambda_hat_mbps=load_fraction * request.sla_mbps, sigma_hat=0.2
        )
        for request in requests
    }
    return ACRRProblem(
        topology=topology, path_set=path_set, requests=requests, forecasts=forecasts
    )


def perturbed(problem, scale):
    forecasts = {
        request.name: ForecastInput(
            lambda_hat_mbps=min(
                problem.forecast(request.name).lambda_hat_mbps * scale,
                request.sla_mbps,
            ),
            sigma_hat=problem.forecast(request.name).sigma_hat,
        )
        for request in problem.requests
    }
    return ACRRProblem(
        topology=problem.topology,
        path_set=problem.path_set,
        requests=problem.requests,
        forecasts=forecasts,
        options=problem.options,
    )


def fingerprint(decision):
    from repro.scenarios import decision_fingerprint

    return decision_fingerprint(decision)


class TestCutPool:
    def test_empty_pool_seeds_nothing(self):
        problem = small_problem()
        pool = CutPool()
        slave = SlaveProblem(problem)
        master = _MasterState(problem, problem.objective_x(), slave.objective_lower_bound())
        seeded, best_x, _token = pool.seed_master(warm_start_key(problem), master, slave)
        assert seeded == 0
        assert best_x is None

    def test_record_then_seed_roundtrip(self):
        problem = small_problem()
        solver = BendersSolver(warm_start=True)
        decision = solver.solve(problem)
        assert decision.stats.cuts_warm == 0  # first solve is cold

        pool = solver.cut_pool
        key = warm_start_key(problem)
        slave = SlaveProblem(problem)
        master = _MasterState(problem, problem.objective_x(), slave.objective_lower_bound())
        seeded, best_x, _token = pool.seed_master(key, master, slave)
        assert seeded == decision.stats.cuts_optimality + decision.stats.cuts_feasibility
        assert master.num_cuts == seeded
        assert best_x is not None and best_x.shape == (problem.num_items,)

    def test_row_count_mismatch_seeds_nothing(self):
        problem = small_problem()
        solver = BendersSolver(warm_start=True)
        solver.solve(problem)
        other = small_problem(num_tenants=5)  # different structure and rows
        slave = SlaveProblem(other)
        master = _MasterState(other, other.objective_x(), slave.objective_lower_bound())
        # Force the wrong key on purpose: even then the shape check refuses.
        seeded, best_x, _token = solver.cut_pool.seed_master(
            warm_start_key(problem), master, slave
        )
        assert seeded == 0
        assert best_x is None

    def test_severely_stale_cuts_are_dropped(self):
        problem = small_problem(load_fraction=0.2)
        pool = CutPool(max_relative_slack=0.0)
        solver = BendersSolver(warm_start=True, cut_pool=pool)
        solver.solve(problem)
        # A big perturbation changes the slave objective d; with a zero slack
        # budget every optimality cut whose dual feasibility moved is dropped.
        big = perturbed(problem, 3.0)
        slave = SlaveProblem(big)
        master = _MasterState(big, big.objective_x(), slave.objective_lower_bound())
        seeded, _, _ = pool.seed_master(warm_start_key(big), master, slave)
        assert pool.dropped_total >= 1
        assert seeded + pool.dropped_total >= 1

    def test_cut_cap_evicts_oldest(self):
        pool = CutPool(max_cuts_per_structure=3)
        key = ("k",)
        mus = [(np.full(4, float(i)), True) for i in range(5)]
        pool.record(key, 4, mus, best_x=None)
        entry = pool.entry(key)
        assert len(entry.multipliers) == 3
        assert entry.multipliers[0][0][0] == 2.0  # oldest two evicted

    def test_structure_cap_evicts_least_recently_used(self):
        pool = CutPool(max_structures=2)
        pool.record(("a",), 4, [(np.zeros(4), True)], None)
        pool.record(("b",), 4, [(np.zeros(4), True)], None)
        assert pool.entry(("a",)) is not None  # touch: "a" becomes most recent
        pool.record(("c",), 4, [(np.zeros(4), True)], None)
        assert len(pool) == 2
        assert pool.entry(("b",)) is None
        assert pool.entry(("a",)) is not None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CutPool(max_cuts_per_structure=0)
        with pytest.raises(ValueError):
            CutPool(max_structures=0)
        with pytest.raises(ValueError):
            CutPool(max_relative_slack=-0.1)


class TestWarmStartKey:
    def test_key_ignores_arrival_epoch(self):
        problem = small_problem()
        from dataclasses import replace

        shifted = [replace(r, arrival_epoch=r.arrival_epoch + 7) for r in problem.requests]
        other = ACRRProblem(
            topology=problem.topology,
            path_set=problem.path_set,
            requests=shifted,
            forecasts={r.name: problem.forecast(r.name) for r in problem.requests},
            options=problem.options,
        )
        assert warm_start_key(problem) == warm_start_key(other)

    def test_key_tracks_topology_mutation(self):
        from dataclasses import replace

        problem = small_problem()
        key_before = warm_start_key(problem)
        link = problem.topology.links[0]
        problem.topology.replace_link(
            replace(link, capacity_mbps=link.capacity_mbps * 0.5)
        )
        assert warm_start_key(problem) != key_before


class TestWarmStartedSolver:
    def test_fast_path_replays_identical_resolve(self):
        problem = small_problem()
        solver = BendersSolver(warm_start=True)
        first = solver.solve(problem)
        second = solver.solve(problem)
        assert second.stats.cuts_warm > 0
        # A byte-identical instance is replayed without touching the master:
        # zero iterations, and the original solve's certificate is carried
        # over verbatim.
        assert second.stats.iterations == 0
        assert second.stats.optimal == first.stats.optimal
        assert second.stats.gap == first.stats.gap
        assert fingerprint(first) == fingerprint(second)

    def test_warm_decisions_match_cold_under_drift(self):
        base = small_problem()
        rng = np.random.default_rng(7)
        warm = BendersSolver(warm_start=True)
        cold_iters = warm_iters = 0
        for _ in range(6):
            instance = perturbed(base, 1.0 + float(rng.uniform(-0.03, 0.03)))
            cold_decision = BendersSolver(warm_start=False).solve(instance)
            warm_decision = warm.solve(instance)
            cold_iters += cold_decision.stats.iterations
            warm_iters += warm_decision.stats.iterations
            assert fingerprint(cold_decision) == fingerprint(warm_decision)
        assert warm_iters <= cold_iters

    def test_time_truncated_solve_is_never_replayed(self):
        """A wall-clock-truncated incumbent is machine-dependent, so the
        replay tier must not canonise it for byte-identical re-solves."""
        problem = small_problem()
        # Near-exact tolerances keep the gap from closing at iteration 1, so
        # the zero-second time limit is what actually stops the loop.
        solver = BendersSolver(
            tolerance=1e-9,
            relative_tolerance=1e-9,
            warm_start=True,
            time_limit_s=0.0,
        )
        first = solver.solve(problem)  # breaks on the time limit immediately
        assert first.stats.iterations >= 1
        assert not first.stats.optimal
        second = solver.solve(problem)
        assert second.stats.iterations >= 1  # no zero-iteration replay

    def test_instance_token_covers_time_limits(self):
        problem = small_problem()
        from repro.core.decomposition import SlaveProblem

        slave = SlaveProblem(problem)
        args = (slave, problem.objective_x(), slave.objective_lower_bound())
        with_limit = BendersSolver(time_limit_s=60.0)._instance_token(*args)
        without_limit = BendersSolver(time_limit_s=None)._instance_token(*args)
        assert with_limit != without_limit

    def test_warm_start_disabled_has_no_pool(self):
        solver = BendersSolver(warm_start=False)
        assert solver.cut_pool is None
        decision = solver.solve(small_problem())
        assert decision.stats.cuts_warm == 0

    def test_shared_pool_across_solver_instances(self):
        pool = CutPool()
        problem = small_problem()
        BendersSolver(warm_start=True, cut_pool=pool).solve(problem)
        second = BendersSolver(warm_start=True, cut_pool=pool).solve(problem)
        assert second.stats.cuts_warm > 0
        assert second.stats.iterations == 0  # identical instance: replayed

    def test_capacity_loss_falls_back_to_cold_loop(self):
        """Shrinking a resource must invalidate the certified optimum."""
        problem = small_problem(edge_cpus=12.0)
        solver = BendersSolver(warm_start=True)
        first = solver.solve(problem)
        assert first.num_accepted > 0
        shrunk_topology = small_problem(edge_cpus=2.0).topology
        shrunk = ACRRProblem(
            topology=shrunk_topology,
            path_set=compute_path_sets(shrunk_topology, k=2),
            requests=problem.requests,
            forecasts={r.name: problem.forecast(r.name) for r in problem.requests},
            options=problem.options,
        )
        cold = BendersSolver(warm_start=False).solve(shrunk)
        warm = solver.solve(shrunk)
        assert fingerprint(cold) == fingerprint(warm)
