"""Tests for the risk-cost function of Section 3.1."""

import pytest

from repro.core.forecast_inputs import ForecastInput
from repro.core.risk import (
    deficit_probability_proxy,
    expected_slice_cost,
    risk_cost,
    uncertainty_scale,
)


class TestDeficitProbabilityProxy:
    def test_full_reservation_has_zero_risk(self):
        assert deficit_probability_proxy(50.0, 10.0, 50.0) == 0.0

    def test_forecast_only_reservation_has_max_risk(self):
        assert deficit_probability_proxy(10.0, 10.0, 50.0) == pytest.approx(1.0)

    def test_linear_in_between(self):
        assert deficit_probability_proxy(30.0, 10.0, 50.0) == pytest.approx(0.5)

    def test_clipped_to_unit_interval(self):
        assert deficit_probability_proxy(60.0, 10.0, 50.0) == 0.0
        assert deficit_probability_proxy(0.0, 10.0, 50.0) == 1.0

    def test_forecast_at_sla(self):
        # No overbooking headroom: reserving the SLA is safe, anything less is
        # maximal risk.
        assert deficit_probability_proxy(50.0, 50.0, 50.0) == 0.0
        assert deficit_probability_proxy(49.0, 50.0, 50.0) == 1.0

    def test_sla_must_be_positive(self):
        with pytest.raises(ValueError):
            deficit_probability_proxy(1.0, 1.0, 0.0)


class TestUncertaintyScale:
    def test_product(self):
        assert uncertainty_scale(0.5, 2.0) == pytest.approx(1.0)

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            uncertainty_scale(0.0, 1.0)
        with pytest.raises(ValueError):
            uncertainty_scale(1.5, 1.0)
        with pytest.raises(ValueError):
            uncertainty_scale(0.5, 0.0)


class TestRiskCost:
    def test_monotone_decreasing_in_reservation(self):
        costs = [
            risk_cost(z, 10.0, 50.0, sigma_hat=0.5, duration_epochs=1.0)
            for z in (10.0, 20.0, 30.0, 40.0, 50.0)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == 0.0

    def test_scales_with_uncertainty(self):
        low = risk_cost(20.0, 10.0, 50.0, sigma_hat=0.1, duration_epochs=1.0)
        high = risk_cost(20.0, 10.0, 50.0, sigma_hat=0.9, duration_epochs=1.0)
        assert high == pytest.approx(9 * low)


class TestExpectedSliceCost:
    def test_full_reservation_cost_is_minus_reward(self):
        cost = expected_slice_cost(
            reservation_mbps=50.0,
            lambda_hat_mbps=10.0,
            sla_mbps=50.0,
            sigma_hat=0.3,
            duration_epochs=1.0,
            reward=2.0,
            penalty_rate=0.04,
        )
        assert cost == pytest.approx(-2.0)

    def test_aggressive_reservation_can_be_unprofitable(self):
        cost = expected_slice_cost(
            reservation_mbps=10.0,
            lambda_hat_mbps=10.0,
            sla_mbps=50.0,
            sigma_hat=1.0,
            duration_epochs=10.0,
            reward=1.0,
            penalty_rate=1.0,
        )
        assert cost > 0.0


class TestForecastInput:
    def test_clamped_keeps_headroom(self):
        forecast = ForecastInput(lambda_hat_mbps=50.0, sigma_hat=0.0).clamped(50.0)
        assert forecast.lambda_hat_mbps < 50.0
        assert forecast.sigma_hat > 0.0

    def test_pessimistic_is_near_sla(self):
        forecast = ForecastInput.pessimistic(50.0)
        assert forecast.lambda_hat_mbps == pytest.approx(49.95)
        assert forecast.sigma_hat == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastInput(lambda_hat_mbps=-1.0, sigma_hat=0.5)
        with pytest.raises(ValueError):
            ForecastInput(lambda_hat_mbps=1.0, sigma_hat=1.5)
