"""Property: campaign execution is executor-invariant.

The same grid run serially and through the process-pool executor must yield
identical run records.  This exercises the cross-process determinism the
campaign layer is built on: per-run seeds derive via
``repro.utils.rng.derive_seed`` (CRC32-based since PR 1, so unaffected by
per-process hash salting) and run kinds are pure functions of their spec.
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import Campaign
from repro.experiments.fig5_homogeneous import fig5_campaign
from repro.utils.executors import ProcessPoolRunExecutor, SerialExecutor

pytestmark = pytest.mark.slow


def _record_dicts(result):
    return [record.as_dict() for record in result.records]


def small_grid_campaign() -> Campaign:
    return fig5_campaign(
        operators=("romanian",),
        slice_types=("eMBB", "mMTC"),
        alphas=(0.2, 0.6),
        relative_stds=(0.25,),
        penalty_factors=(1.0,),
        policies=("optimal",),
        num_base_stations=3,
        num_tenants={"romanian": 4},
        num_epochs=2,
        seed=5,
    )


class TestExecutorInvariance:
    def test_serial_and_process_pool_records_identical(self):
        campaign = small_grid_campaign()
        serial = campaign.run(executor=SerialExecutor())
        pooled = campaign.run(executor=ProcessPoolRunExecutor(max_workers=2))
        assert _record_dicts(serial) == _record_dicts(pooled)

    def test_pool_filled_cache_is_valid_for_serial_resume(self, tmp_path):
        campaign = small_grid_campaign()
        pooled = campaign.run(
            cache_dir=tmp_path, executor=ProcessPoolRunExecutor(max_workers=2)
        )
        assert pooled.num_executed == len(campaign.specs)
        resumed = campaign.run(cache_dir=tmp_path, executor=SerialExecutor())
        assert resumed.num_executed == 0
        assert _record_dicts(resumed) == _record_dicts(pooled)

    def test_derived_seed_campaign_is_executor_invariant(self):
        # Seeds resolved from the campaign base seed (spec.seed=None) must
        # derive identically in whichever process executes the run.
        campaign = small_grid_campaign()
        derived = Campaign(
            name=campaign.name,
            specs=tuple(
                spec.__class__(**{**spec.as_dict(), "seed": None})
                for spec in campaign.specs
            ),
            base_seed=77,
        )
        serial = derived.run(executor=SerialExecutor())
        pooled = derived.run(executor=ProcessPoolRunExecutor(max_workers=2))
        assert _record_dicts(serial) == _record_dicts(pooled)
