"""Bit-for-bit equivalence of the vectorized multiplexer vs. the scalar seed.

The vectorized :class:`SliceMultiplexer` (see DESIGN.md, "Vectorized data
plane") promises *identical* floating-point results to the straight-line
per-sample formulation it replaced.  This module keeps that original scalar
implementation as a reference and asserts exact equality -- not approximate
closeness -- on randomized topologies, allocations and sample draws,
including the big-M deficit branch where protected traffic alone exceeds
capacity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.slices import EMBB_TEMPLATE, SliceRequest, SliceTemplate
from repro.core.solution import TenantAllocation
from repro.dataplane.multiplexing import _EPSILON, ResourceLoadResult, SliceMultiplexer
from repro.topology.paths import compute_path_sets

from tests.conftest import build_tiny_topology


# --------------------------------------------------------------------- #
# Scalar reference: the seed implementation, verbatim algorithmics
# --------------------------------------------------------------------- #
def scalar_unserved_traffic(
    mux: SliceMultiplexer,
    offered_samples_mbps: dict[tuple[str, str], np.ndarray],
) -> ResourceLoadResult:
    """Straight-line per-sample unserved-traffic computation (seed version)."""
    keys = list(offered_samples_mbps.keys())
    if not keys:
        return ResourceLoadResult(unserved_mbps={}, overloaded_resources=())
    num_samples = len(next(iter(offered_samples_mbps.values())))
    unserved = {key: np.zeros(num_samples) for key in keys}
    overloaded: set[str] = set()

    radio_members = mux._radio_members(keys)
    link_members = mux._link_members(keys)
    compute_members = mux._compute_members(keys)

    for sample_index in range(num_samples):
        loads = {
            key: float(np.asarray(offered_samples_mbps[key])[sample_index])
            for key in keys
        }
        for resource, capacity, members in (
            radio_members + link_members + compute_members
        ):
            base_load = sum(constant for (_key, _mult, constant) in members)
            demand = base_load + sum(
                loads[key] * multiplier for (key, multiplier, _constant) in members
            )
            overload = demand - capacity
            if overload <= _EPSILON:
                continue
            overloaded.add(resource)
            shortfall = _scalar_attribute_overload(mux, overload, members, loads)
            for key, unserved_mbps in shortfall.items():
                unserved[key][sample_index] = max(
                    unserved[key][sample_index], unserved_mbps
                )

    return ResourceLoadResult(
        unserved_mbps=unserved, overloaded_resources=tuple(sorted(overloaded))
    )


def _scalar_attribute_overload(mux, overload, members, loads):
    excess: dict[tuple[str, str], float] = {}
    multipliers: dict[tuple[str, str], float] = {}
    demands: dict[tuple[str, str], float] = {}
    for key, multiplier, _constant in members:
        name, bs = key
        allocation = mux.allocations[name]
        reservation = allocation.reservations_mbps.get(bs, 0.0)
        load = loads[key]
        demands[key] = load
        multipliers[key] = multiplier
        excess[key] = max(0.0, load - reservation)

    shortfall: dict[tuple[str, str], float] = {}
    excess_resource_units = {
        key: excess[key] * max(multipliers[key], _EPSILON) for key in excess
    }
    total_excess = sum(excess_resource_units.values())
    remaining = overload
    if total_excess > _EPSILON:
        absorbed = min(remaining, total_excess)
        for key, excess_units in excess_resource_units.items():
            share = absorbed * (excess_units / total_excess)
            shortfall[key] = share / max(multipliers[key], _EPSILON)
        remaining -= absorbed
    if remaining > _EPSILON:
        demand_units = {
            key: demands[key] * max(multipliers[key], _EPSILON) for key in demands
        }
        total_demand = sum(demand_units.values())
        if total_demand > _EPSILON:
            for key, units in demand_units.items():
                extra = remaining * (units / total_demand)
                shortfall[key] = shortfall.get(key, 0.0) + extra / max(
                    multipliers[key], _EPSILON
                )
    return {
        key: min(value, demands[key]) for key, value in shortfall.items() if value > 0
    }


# --------------------------------------------------------------------- #
# Randomized instance construction
# --------------------------------------------------------------------- #
HEAVY_COMPUTE_TEMPLATE = SliceTemplate(
    name="heavy-compute",
    reward=2.0,
    latency_tolerance_ms=30.0,
    sla_mbps=40.0,
    compute_baseline_cpus=1.5,
    compute_cpus_per_mbps=0.5,
)


def random_case(
    rng: np.random.Generator,
    num_bs: int,
    num_tenants: int,
    num_samples: int,
    reservation_fraction: float,
    capacity_scale: float,
):
    """A random star topology with random allocations and offered loads."""
    topology = build_tiny_topology(
        num_base_stations=num_bs,
        bs_capacity_mhz=float(
            capacity_scale * num_tenants * EMBB_TEMPLATE.sla_mbps / 7.5
        ),
        link_capacity_mbps=float(
            capacity_scale * 1.4 * num_tenants * EMBB_TEMPLATE.sla_mbps
        ),
        edge_cpus=float(capacity_scale * num_tenants * num_bs * 4.0),
        core_cpus=float(capacity_scale * num_tenants * num_bs * 8.0),
    )
    path_set = compute_path_sets(topology, k=2)
    compute_units = topology.compute_unit_names

    allocations: dict[str, TenantAllocation] = {}
    offered: dict[tuple[str, str], np.ndarray] = {}
    for t in range(num_tenants):
        template = HEAVY_COMPUTE_TEMPLATE if t % 3 == 0 else EMBB_TEMPLATE
        request = SliceRequest(name=f"slice-{t}", template=template)
        cu = compute_units[int(rng.integers(len(compute_units)))]
        # Some tenants are only served at a subset of the base stations.
        served = [
            bs for bs in topology.base_station_names if rng.random() > 0.2
        ]
        paths = {}
        reservations = {}
        for bs in served:
            candidates = path_set.paths(bs, cu)
            if not candidates:
                continue
            paths[bs] = candidates[int(rng.integers(len(candidates)))]
            reservations[bs] = float(
                reservation_fraction * request.sla_mbps * rng.uniform(0.5, 1.5)
            )
        accepted = bool(paths) and rng.random() > 0.1
        allocations[request.name] = TenantAllocation(
            request=request,
            accepted=accepted,
            compute_unit=cu if accepted else None,
            paths=paths if accepted else {},
            reservations_mbps=reservations if accepted else {},
        )
        # Offer load at every BS -- including ones the slice is not served
        # at, which the multiplexer must ignore.
        for bs in topology.base_station_names:
            offered[(request.name, bs)] = rng.uniform(
                0.0, request.sla_mbps, size=num_samples
            )
    return topology, allocations, offered


def assert_identical(reference: ResourceLoadResult, result: ResourceLoadResult):
    assert result.overloaded_resources == reference.overloaded_resources
    assert set(result.unserved_mbps) == set(reference.unserved_mbps)
    for key, expected in reference.unserved_mbps.items():
        actual = result.unserved_mbps[key]
        assert np.array_equal(actual, expected), (
            f"unserved traffic diverged for {key}: {actual} != {expected}"
        )


# --------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------- #
class TestVectorizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_saturated_instances(self, seed):
        rng = np.random.default_rng(seed)
        topology, allocations, offered = random_case(
            rng,
            num_bs=int(rng.integers(2, 6)),
            num_tenants=int(rng.integers(3, 10)),
            num_samples=int(rng.integers(1, 25)),
            reservation_fraction=0.4,
            # Scarce capacity: most samples overload at least one resource.
            capacity_scale=float(rng.uniform(0.25, 0.6)),
        )
        mux = SliceMultiplexer(topology, allocations)
        assert_identical(
            scalar_unserved_traffic(mux, offered), mux.unserved_traffic(offered)
        )

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_randomized_unsaturated_instances(self, seed):
        rng = np.random.default_rng(seed)
        topology, allocations, offered = random_case(
            rng,
            num_bs=3,
            num_tenants=5,
            num_samples=10,
            reservation_fraction=0.5,
            capacity_scale=3.0,
        )
        mux = SliceMultiplexer(topology, allocations)
        reference = scalar_unserved_traffic(mux, offered)
        result = mux.unserved_traffic(offered)
        assert result.total_unserved() == 0.0
        assert_identical(reference, result)

    @pytest.mark.parametrize("seed", range(12, 18))
    def test_deficit_branch_protected_traffic_exceeds_capacity(self, seed):
        """Big-M relaxation: reservations alone exceed capacity.

        Offered loads are kept at or below the reservations, so the excess
        pool is empty and the whole overload flows through the
        proportional-to-demand branch.
        """
        rng = np.random.default_rng(seed)
        topology, allocations, offered = random_case(
            rng,
            num_bs=int(rng.integers(2, 5)),
            num_tenants=int(rng.integers(3, 8)),
            num_samples=8,
            # Reservations far above capacity (deficit relaxation outcome).
            reservation_fraction=1.0,
            capacity_scale=0.3,
        )
        # Clamp every offered sample below its reservation: all traffic is
        # protected, yet the resources still saturate.
        for (name, bs), samples in offered.items():
            allocation = allocations[name]
            reservation = allocation.reservations_mbps.get(bs, 0.0)
            offered[(name, bs)] = np.minimum(samples, reservation)
        mux = SliceMultiplexer(topology, allocations)
        reference = scalar_unserved_traffic(mux, offered)
        result = mux.unserved_traffic(offered)
        assert reference.overloaded_resources, "case must actually saturate"
        assert_identical(reference, result)

    def test_mixed_excess_and_deficit_attribution(self):
        """One saturated resource with both protected and overbooked slices."""
        rng = np.random.default_rng(99)
        topology, allocations, offered = random_case(
            rng,
            num_bs=2,
            num_tenants=6,
            num_samples=16,
            reservation_fraction=0.8,
            capacity_scale=0.45,
        )
        mux = SliceMultiplexer(topology, allocations)
        reference = scalar_unserved_traffic(mux, offered)
        result = mux.unserved_traffic(offered)
        assert reference.overloaded_resources
        assert_identical(reference, result)

    def test_empty_offered(self):
        topology = build_tiny_topology()
        mux = SliceMultiplexer(topology, {})
        result = mux.unserved_traffic({})
        assert result.unserved_mbps == {}
        assert result.overloaded_resources == ()

    def test_accepts_plain_lists(self):
        """Offered loads arriving as python lists are converted exactly once."""
        rng = np.random.default_rng(5)
        topology, allocations, offered = random_case(
            rng, num_bs=2, num_tenants=4, num_samples=6,
            reservation_fraction=0.4, capacity_scale=0.4,
        )
        as_lists = {key: list(map(float, samples)) for key, samples in offered.items()}
        mux = SliceMultiplexer(topology, allocations)
        assert_identical(
            scalar_unserved_traffic(mux, offered), mux.unserved_traffic(as_lists)
        )
