"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.knapsack import KnapsackItem, solve_knapsack_ffd
from repro.core.risk import deficit_probability_proxy, risk_cost
from repro.dataplane.middlebox import RateControlMiddlebox
from repro.forecasting.exponential import DoubleExponentialForecaster, SingleExponentialForecaster
from repro.forecasting.naive import MeanForecaster, NaiveForecaster, PeakForecaster
from repro.traffic.demand import GaussianDemand
from repro.utils.stats import EmpiricalCDF

finite_loads = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


class TestRiskFunctionProperties:
    @given(
        z=st.floats(0.0, 100.0),
        lam_hat=st.floats(0.0, 99.0),
        sigma=st.floats(0.001, 1.0),
        duration=st.floats(0.01, 10.0),
    )
    def test_risk_bounded_and_nonnegative(self, z, lam_hat, sigma, duration):
        sla = 100.0
        rho = risk_cost(z, lam_hat, sla, sigma, duration)
        assert 0.0 <= rho <= sigma * duration + 1e-12

    @given(
        lam_hat=st.floats(0.0, 90.0),
        z_low=st.floats(0.0, 100.0),
        z_high=st.floats(0.0, 100.0),
    )
    def test_deficit_probability_monotone_in_reservation(self, lam_hat, z_low, z_high):
        sla = 100.0
        lo, hi = sorted((z_low, z_high))
        assert deficit_probability_proxy(hi, lam_hat, sla) <= deficit_probability_proxy(
            lo, lam_hat, sla
        )


class TestKnapsackProperties:
    @given(
        values=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20),
        weights=st.lists(st.floats(0.1, 20.0), min_size=1, max_size=20),
        capacity=st.floats(0.0, 100.0),
    )
    def test_capacity_never_exceeded(self, values, weights, capacity):
        size = min(len(values), len(weights))
        items = [
            KnapsackItem(key=i, value=values[i], weight=weights[i]) for i in range(size)
        ]
        chosen = solve_knapsack_ffd(items, capacity)
        assert sum(item.weight for item in chosen) <= capacity + 1e-9
        assert len({item.key for item in chosen}) == len(chosen)

    @given(
        values=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=10),
        capacity=st.floats(10.0, 100.0),
    )
    def test_group_uniqueness(self, values, capacity):
        items = [
            KnapsackItem(key=i, value=v, weight=1.0, group="same-tenant")
            for i, v in enumerate(values)
        ]
        chosen = solve_knapsack_ffd(items, capacity)
        assert len(chosen) <= 1


class TestEmpiricalCDFProperties:
    @given(samples=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_cdf_monotone_and_normalised(self, samples):
        cdf = EmpiricalCDF.from_samples(samples)
        xs, ps = cdf.as_arrays()
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ps) >= 0)
        assert ps[-1] == pytest.approx(1.0)
        assert cdf.evaluate(max(samples)) == pytest.approx(1.0)
        assert cdf.evaluate(min(samples) - 1.0) == 0.0


class TestMiddleboxProperties:
    @given(
        offered=st.lists(st.floats(0.0, 200.0), min_size=1, max_size=30),
        reservation=st.floats(0.0, 100.0),
    )
    @settings(max_examples=50)
    def test_traffic_conservation_and_caps(self, offered, reservation):
        middlebox = RateControlMiddlebox(
            slice_name="s", sla_mbps=100.0, reservation_mbps=reservation
        )
        for load in offered:
            report = middlebox.process_sample(load, sample_seconds=60.0)
            total = (
                report.forwarded_mbps
                + report.buffered_mbps
                + report.dropped_beyond_sla_mbps
                + report.dropped_overflow_mbps
            )
            assert total == pytest.approx(report.offered_mbps, abs=1e-6)
            assert report.forwarded_mbps <= reservation + 1e-9
            assert 0.0 <= report.violation_fraction <= 1.0


class TestForecasterProperties:
    @given(
        history=st.lists(st.floats(0.0, 500.0), min_size=3, max_size=60),
        horizon=st.integers(1, 5),
    )
    @settings(max_examples=50)
    def test_forecasters_return_finite_bounded_sigma(self, history, horizon):
        arr = np.asarray(history)
        for forecaster in (
            NaiveForecaster(),
            MeanForecaster(),
            PeakForecaster(),
            SingleExponentialForecaster(),
            DoubleExponentialForecaster(),
        ):
            if not forecaster.can_forecast(arr):
                continue
            outcome = forecaster.forecast(arr, horizon=horizon)
            assert len(outcome.predictions) == horizon
            assert all(np.isfinite(p) for p in outcome.predictions)
            assert 0.0 < outcome.sigma_hat <= 1.0

    @given(
        mean=st.floats(0.0, 45.0),
        std=st.floats(0.0, 20.0),
        epoch=st.integers(0, 100),
    )
    @settings(max_examples=50)
    def test_demand_samples_within_sla(self, mean, std, epoch):
        demand = GaussianDemand(mean_mbps=mean, std_mbps=std, sla_mbps=50.0, seed=1)
        samples = np.asarray(demand.sample_epoch(epoch, 16).samples_mbps)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 50.0)
