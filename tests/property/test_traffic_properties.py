"""Property tests for the demand models (traffic/demand, traffic/seasonal).

Two claim families:

* **non-negativity / SLA conformance** -- every sampled load lies in
  ``[0, sla_mbps]`` for every model and epoch;
* **mean / sigma calibration** -- under a fixed seed, the empirical mean and
  standard deviation of a large sample match the configured parameters
  within statistical tolerance.  The calibration cases keep the Gaussian
  well inside ``[0, sla]`` (mean in the middle, small sigma) so clipping
  bias is negligible compared to the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.demand import DeterministicDemand, GaussianDemand, OnOffDemand
from repro.traffic.seasonal import (
    DEFAULT_DIURNAL_PROFILE,
    DiurnalProfile,
    SeasonalDemand,
)

_SLA = 100.0


class TestNonNegativityAndSlaConformance:
    @given(
        mean=st.floats(0.0, 120.0),
        std=st.floats(0.0, 60.0),
        seed=st.integers(0, 2**20),
        epoch=st.integers(0, 200),
    )
    @settings(max_examples=60)
    def test_gaussian_samples_stay_in_band(self, mean, std, seed, epoch):
        demand = GaussianDemand(mean_mbps=mean, std_mbps=std, sla_mbps=_SLA, seed=seed)
        samples = np.asarray(demand.sample_epoch(epoch, 24).samples_mbps)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= _SLA)

    @given(
        base_mean=st.floats(0.0, 90.0),
        relative_std=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**20),
        epoch=st.integers(0, 72),
    )
    @settings(max_examples=60)
    def test_seasonal_samples_stay_in_band(self, base_mean, relative_std, seed, epoch):
        demand = SeasonalDemand(
            base_mean_mbps=base_mean,
            relative_std=relative_std,
            sla_mbps=_SLA,
            seed=seed,
        )
        samples = np.asarray(demand.sample_epoch(epoch, 16).samples_mbps)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= _SLA)
        assert demand.mean_mbps(epoch) >= 0.0
        assert demand.std_mbps(epoch) == pytest.approx(
            relative_std * demand.mean_mbps(epoch)
        )

    @given(
        on=st.floats(0.0, 90.0),
        off=st.floats(0.0, 90.0),
        std=st.floats(0.0, 30.0),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=40)
    def test_onoff_means_come_from_the_two_regimes(self, on, off, std, seed):
        demand = OnOffDemand(
            on_mean_mbps=on,
            off_mean_mbps=off,
            std_mbps=std,
            sla_mbps=_SLA,
            seed=seed,
        )
        for epoch in range(30):
            assert demand.mean_mbps(epoch) in (on, off)
            samples = np.asarray(demand.sample_epoch(epoch, 8).samples_mbps)
            assert np.all(samples >= 0.0)
            assert np.all(samples <= _SLA)


class TestCalibration:
    @given(
        mean=st.floats(30.0, 70.0),
        relative_std=st.floats(0.02, 0.15),
        seed=st.integers(0, 2**20),
    )
    @settings(max_examples=25, deadline=None)
    def test_gaussian_mean_and_sigma_match_configuration(self, mean, relative_std, seed):
        std = relative_std * mean
        demand = GaussianDemand(mean_mbps=mean, std_mbps=std, sla_mbps=_SLA, seed=seed)
        samples = np.concatenate(
            [demand.sample_epoch(epoch, 50).samples_mbps for epoch in range(40)]
        )
        n = samples.size
        # Mean estimator: tolerance of 5 standard errors; sigma estimator:
        # relative tolerance of ~5 / sqrt(2n).
        assert np.mean(samples) == pytest.approx(mean, abs=5 * std / np.sqrt(n))
        assert np.std(samples) == pytest.approx(std, rel=5.0 / np.sqrt(2 * n) + 0.01)

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_seasonal_daily_mean_matches_base_mean(self, seed):
        base_mean = 50.0
        demand = SeasonalDemand(
            base_mean_mbps=base_mean,
            relative_std=0.0,  # isolate the profile from sampling noise
            sla_mbps=_SLA,
            seed=seed,
        )
        epoch_means = np.array([demand.mean_mbps(epoch) for epoch in range(24)])
        # The profile is normalised to an average multiplier of exactly 1.
        assert np.mean(epoch_means) == pytest.approx(base_mean, rel=1e-9)
        profile = DEFAULT_DIURNAL_PROFILE.as_array()
        assert np.min(epoch_means) == pytest.approx(base_mean * profile.min())
        assert np.max(epoch_means) == pytest.approx(base_mean * profile.max())

    def test_deterministic_demand_has_zero_spread(self):
        demand = DeterministicDemand(mean_mbps=40.0, sla_mbps=_SLA, seed=3)
        samples = np.asarray(demand.sample_epoch(0, 32).samples_mbps)
        assert np.all(samples == 40.0)
        assert demand.std_mbps(0) == 0.0

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_fixed_seed_reproduces_the_trace(self, seed):
        def make():
            return GaussianDemand(mean_mbps=50.0, std_mbps=5.0, sla_mbps=_SLA, seed=seed)

        np.testing.assert_array_equal(
            make().peak_series(20, 8), make().peak_series(20, 8)
        )


class TestDiurnalProfile:
    @given(
        multipliers=st.lists(st.floats(0.01, 5.0), min_size=24, max_size=24),
        hour=st.floats(0.0, 48.0),
    )
    @settings(max_examples=50)
    def test_normalised_profile_interpolates_within_bounds(self, multipliers, hour):
        profile = DiurnalProfile.normalised(multipliers)
        arr = profile.as_array()
        assert np.mean(arr) == pytest.approx(1.0)
        value = profile.multiplier(hour)
        assert arr.min() - 1e-9 <= value <= arr.max() + 1e-9

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="24 hourly multipliers"):
            DiurnalProfile.normalised([1.0] * 23)
