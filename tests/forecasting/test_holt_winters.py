"""Tests for the multiplicative Holt-Winters forecaster."""

import numpy as np
import pytest

from repro.forecasting.holt_winters import HoltWintersForecaster


def seasonal_series(num_days: int, season: int = 24, base: float = 20.0, noise: float = 0.0, seed: int = 0):
    """A synthetic diurnal series: sinusoidal multiplicative seasonality."""
    rng = np.random.default_rng(seed)
    t = np.arange(num_days * season)
    seasonal = 1.0 + 0.5 * np.sin(2 * np.pi * t / season)
    values = base * seasonal
    if noise:
        values = values * (1.0 + rng.normal(0, noise, size=values.size))
    return np.clip(values, 0.1, None)


class TestValidation:
    def test_requires_two_seasons(self):
        forecaster = HoltWintersForecaster(season_length=24)
        assert forecaster.min_history == 48
        with pytest.raises(ValueError):
            forecaster.forecast(seasonal_series(1))

    def test_season_length_validated(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(season_length=1)

    def test_smoothing_params_validated(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(alpha=2.0)


class TestForecastQuality:
    def test_tracks_clean_seasonality(self):
        series = seasonal_series(4)
        forecaster = HoltWintersForecaster(season_length=24)
        # Forecast the next full day and compare to the true seasonal shape.
        outcome = forecaster.forecast(series, horizon=24)
        truth = seasonal_series(5)[-24:]
        errors = np.abs(np.array(outcome.predictions) - truth) / truth
        assert np.mean(errors) < 0.15

    def test_beats_last_value_on_seasonal_data(self):
        from repro.forecasting.naive import NaiveForecaster

        series = seasonal_series(4, noise=0.05, seed=3)
        truth = seasonal_series(5, noise=0.0)[len(series)]
        hw = HoltWintersForecaster(season_length=24).forecast(series).next_value
        naive = NaiveForecaster().forecast(series).next_value
        assert abs(hw - truth) <= abs(naive - truth)

    def test_sigma_reflects_noise(self):
        clean = HoltWintersForecaster(season_length=24).forecast(seasonal_series(4))
        noisy = HoltWintersForecaster(season_length=24).forecast(
            seasonal_series(4, noise=0.3, seed=5)
        )
        assert noisy.sigma_hat > clean.sigma_hat

    def test_predictions_non_negative(self):
        series = seasonal_series(3) * 0.01
        outcome = HoltWintersForecaster(season_length=24).forecast(series, horizon=48)
        assert all(p >= 0.0 for p in outcome.predictions)

    def test_handles_zero_samples(self):
        series = seasonal_series(3)
        series[::7] = 0.0
        outcome = HoltWintersForecaster(season_length=24).forecast(series)
        assert np.isfinite(outcome.next_value)
        assert 0 < outcome.sigma_hat <= 1.0
