"""Tests for single/double exponential smoothing."""

import numpy as np
import pytest

from repro.forecasting.exponential import (
    DoubleExponentialForecaster,
    SingleExponentialForecaster,
)


class TestSingleExponential:
    def test_constant_series_predicted_exactly(self):
        outcome = SingleExponentialForecaster(alpha=0.5).forecast(np.full(20, 7.0))
        assert outcome.next_value == pytest.approx(7.0)
        assert outcome.sigma_hat <= 0.01

    def test_prediction_between_min_and_max(self):
        rng = np.random.default_rng(2)
        history = np.abs(rng.normal(20, 3, size=40))
        outcome = SingleExponentialForecaster().forecast(history)
        assert history.min() <= outcome.next_value <= history.max()

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            SingleExponentialForecaster(alpha=1.5)

    def test_min_history(self):
        forecaster = SingleExponentialForecaster()
        assert not forecaster.can_forecast(np.array([1.0]))
        assert forecaster.can_forecast(np.array([1.0, 2.0]))


class TestDoubleExponential:
    def test_captures_linear_trend(self):
        history = np.arange(1.0, 31.0)  # strictly increasing
        outcome = DoubleExponentialForecaster(alpha=0.5, beta=0.3).forecast(history, horizon=3)
        # The forecast should keep increasing beyond the last observation.
        assert outcome.predictions[0] > history[-1] * 0.95
        assert outcome.predictions[2] > outcome.predictions[0]

    def test_predictions_never_negative(self):
        history = np.array([30.0, 20.0, 10.0, 5.0, 1.0])
        outcome = DoubleExponentialForecaster().forecast(history, horizon=5)
        assert all(p >= 0.0 for p in outcome.predictions)

    def test_constant_series(self):
        outcome = DoubleExponentialForecaster().forecast(np.full(20, 4.0))
        assert outcome.next_value == pytest.approx(4.0, abs=1e-6)

    def test_beta_validated(self):
        with pytest.raises(ValueError):
            DoubleExponentialForecaster(beta=-0.1)
