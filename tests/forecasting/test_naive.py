"""Tests for the naive forecasting baselines."""

import numpy as np
import pytest

from repro.forecasting.naive import MeanForecaster, NaiveForecaster, PeakForecaster


class TestNaiveForecaster:
    def test_predicts_last_value(self):
        outcome = NaiveForecaster().forecast(np.array([1.0, 2.0, 3.0]), horizon=2)
        assert outcome.predictions == (3.0, 3.0)

    def test_sigma_small_for_constant_series(self):
        outcome = NaiveForecaster().forecast(np.array([5.0] * 10))
        assert outcome.sigma_hat <= 0.01

    def test_sigma_large_for_noisy_series(self):
        rng = np.random.default_rng(0)
        series = np.abs(rng.normal(10, 10, size=50))
        outcome = NaiveForecaster().forecast(series)
        assert outcome.sigma_hat > 0.2

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            NaiveForecaster().forecast(np.array([]))

    def test_negative_history_rejected(self):
        with pytest.raises(ValueError):
            NaiveForecaster().forecast(np.array([1.0, -2.0]))

    def test_horizon_validated(self):
        with pytest.raises(ValueError):
            NaiveForecaster().forecast(np.array([1.0]), horizon=0)


class TestMeanForecaster:
    def test_predicts_mean(self):
        outcome = MeanForecaster().forecast(np.array([2.0, 4.0, 6.0]))
        assert outcome.next_value == pytest.approx(4.0)

    def test_fitted_series_has_history_length(self):
        history = np.array([1.0, 2.0, 3.0, 4.0])
        outcome = MeanForecaster().forecast(history)
        assert len(outcome.fitted) == len(history)


class TestPeakForecaster:
    def test_predicts_max(self):
        outcome = PeakForecaster().forecast(np.array([3.0, 9.0, 4.0]))
        assert outcome.next_value == pytest.approx(9.0)

    def test_never_below_history_max(self):
        rng = np.random.default_rng(1)
        history = np.abs(rng.normal(10, 3, size=30))
        outcome = PeakForecaster().forecast(history)
        assert outcome.next_value >= history.max() - 1e-9


class TestForecastOutcomeConversion:
    def test_as_forecast_input_clamps_to_sla(self):
        outcome = PeakForecaster().forecast(np.array([80.0, 90.0]))
        forecast = outcome.as_forecast_input(sla_mbps=50.0)
        assert forecast.lambda_hat_mbps < 50.0
        assert 0 < forecast.sigma_hat <= 1.0
