"""Fixture-driven tests per rule: each RA01-RA05 checker must fire on its
minimal offending snippet and stay silent on the minimal clean one.

Fixtures are compiled from strings into in-memory :class:`ProjectTree`
objects; the golden run over the real tree lives in test_golden_tree.py.
"""

from __future__ import annotations

from repro.analysis import ProjectTree
from repro.analysis.ra01_locks import LockDisciplineChecker
from repro.analysis.ra02_errors import ErrorTaxonomyChecker
from repro.analysis.ra03_determinism import DeterminismChecker
from repro.analysis.ra04_wire import WireContractChecker
from repro.analysis.ra05_executors import ExecutorSafetyChecker


def findings_for(checker, sources, documents=None):
    tree = ProjectTree.from_sources(sources, documents)
    return list(checker.check(tree))


# --------------------------------------------------------------------- #
# RA01 -- lock discipline
# --------------------------------------------------------------------- #
BROKER_PATH = "src/repro/api/broker.py"

RA01_OFFENDING = '''
import threading

class SliceBroker:
    def __init__(self):
        self._lock = threading.RLock()

    def submit(self, request):
        self._tickets = {}
        return request
'''

RA01_PURE_READ_LOCKS = '''
class SliceBroker:
    def quote(self, request):
        with self._lock:
            return request
'''

RA01_CLEAN = '''
import functools
import threading

def _synchronized(method):
    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)
    return wrapper

class SliceBroker:
    def __init__(self):
        self._lock = threading.RLock()

    @_synchronized
    def release(self, name):
        self._released = name

    def submit(self, request):
        with self._lock:
            return request

    def submit_batch(self, requests):
        self._lock.acquire()
        try:
            return list(requests)
        finally:
            self._lock.release()

    @property
    def pending_count(self):
        return 0

    def quote(self, request):
        return request

    def _helper(self):
        self._internal = 1
'''


class TestRA01:
    def test_unlocked_mutating_method_fires(self):
        found = findings_for(LockDisciplineChecker(), {BROKER_PATH: RA01_OFFENDING})
        assert [f.symbol for f in found] == ["SliceBroker.submit"]
        assert "admission lock" in found[0].message

    def test_pure_read_taking_the_lock_fires(self):
        found = findings_for(LockDisciplineChecker(), {BROKER_PATH: RA01_PURE_READ_LOCKS})
        assert [f.symbol for f in found] == ["SliceBroker.quote"]
        assert "pure read" in found[0].message

    def test_clean_broker_passes(self):
        assert findings_for(LockDisciplineChecker(), {BROKER_PATH: RA01_CLEAN}) == []

    def test_other_modules_ignored(self):
        assert (
            findings_for(
                LockDisciplineChecker(), {"src/repro/core/x.py": RA01_OFFENDING}
            )
            == []
        )


# --------------------------------------------------------------------- #
# RA02 -- error taxonomy
# --------------------------------------------------------------------- #
RA02_OFFENDING = '''
def handler(payload):
    if not payload:
        raise ValueError("empty payload")
'''

RA02_CLEAN = '''
from repro.api.errors import ValidationError

def handler(payload):
    if not payload:
        raise ValidationError("empty payload")
'''

RA02_ERRORS_UNREGISTERED = '''
class BrokerError(Exception):
    code = "broker_error"

class ShinyError(BrokerError):
    code = "shiny"

ERROR_TYPES = {cls.code: cls for cls in (BrokerError,)}
'''

RA02_ERRORS_NO_CODE = '''
class BrokerError(Exception):
    code = "broker_error"

class SilentError(BrokerError):
    pass

ERROR_TYPES = {cls.code: cls for cls in (BrokerError, SilentError)}
'''

RA02_ERRORS_OK = '''
class BrokerError(Exception):
    code = "broker_error"

class ShinyError(BrokerError):
    code = "shiny"

ERROR_TYPES = {cls.code: cls for cls in (BrokerError, ShinyError)}
'''

RA02_TRANSPORT_MISSING = '''
STATUS_BY_CODE: dict[str, int] = {
    "broker_error": 500,
}
'''

RA02_TRANSPORT_OK = '''
STATUS_BY_CODE: dict[str, int] = {
    "broker_error": 500,
    "shiny": 418,
}
'''


class TestRA02:
    def test_bare_raise_in_api_module_fires(self):
        found = findings_for(
            ErrorTaxonomyChecker(), {"src/repro/api/handlers.py": RA02_OFFENDING}
        )
        assert [f.symbol for f in found] == ["handler"]
        assert "raise ValueError" in found[0].message

    def test_taxonomy_raise_passes(self):
        assert (
            findings_for(
                ErrorTaxonomyChecker(), {"src/repro/api/handlers.py": RA02_CLEAN}
            )
            == []
        )

    def test_bare_raise_outside_api_ignored(self):
        assert (
            findings_for(
                ErrorTaxonomyChecker(), {"src/repro/core/solver.py": RA02_OFFENDING}
            )
            == []
        )

    def test_unregistered_subclass_fires(self):
        found = findings_for(
            ErrorTaxonomyChecker(), {"src/repro/api/errors.py": RA02_ERRORS_UNREGISTERED}
        )
        assert any("ERROR_TYPES" in f.message for f in found)

    def test_subclass_without_code_fires(self):
        found = findings_for(
            ErrorTaxonomyChecker(), {"src/repro/api/errors.py": RA02_ERRORS_NO_CODE}
        )
        assert any("override the stable `code`" in f.message for f in found)

    def test_code_without_status_mapping_fires(self):
        found = findings_for(
            ErrorTaxonomyChecker(),
            {
                "src/repro/api/errors.py": RA02_ERRORS_OK,
                "src/repro/api/transport.py": RA02_TRANSPORT_MISSING,
            },
        )
        assert any("STATUS_BY_CODE" in f.message for f in found)

    def test_registered_and_mapped_code_passes(self):
        assert (
            findings_for(
                ErrorTaxonomyChecker(),
                {
                    "src/repro/api/errors.py": RA02_ERRORS_OK,
                    "src/repro/api/transport.py": RA02_TRANSPORT_OK,
                },
            )
            == []
        )


# --------------------------------------------------------------------- #
# RA03 -- determinism
# --------------------------------------------------------------------- #
RA03_WALL_CLOCK = '''
import time

def sample(seed):
    return time.time()
'''

RA03_GLOBAL_RNG = '''
import random

def sample():
    return random.random()
'''

RA03_UNSEEDED_NUMPY = '''
import numpy as np

def sample():
    return np.random.default_rng()
'''

RA03_LEGACY_NUMPY = '''
import numpy as np

def sample():
    return np.random.rand(3)
'''

RA03_SET_ITERATION = '''
def fingerprint(names):
    return [n for n in set(names)]
'''

RA03_CLEAN = '''
import numpy as np

def sample(seed):
    rng = np.random.default_rng(seed)
    return rng.normal()

def fingerprint(names):
    return [n for n in sorted(set(names))]

def membership(name, names):
    return name in set(names)
'''

RA03_TIMING_ALLOWED = '''
import time

class BendersSolver:
    def solve(self, problem):
        start = time.perf_counter()
        return time.perf_counter() - start
'''

RA03_TIMING_FORBIDDEN = '''
import time

def hash_inputs(spec):
    return time.perf_counter()
'''


class TestRA03:
    def _run(self, source, path="src/repro/core/sampler.py"):
        return findings_for(DeterminismChecker(), {path: source})

    def test_wall_clock_fires(self):
        found = self._run(RA03_WALL_CLOCK)
        assert any("wall-clock" in f.message for f in found)

    def test_stdlib_global_rng_fires(self):
        found = self._run(RA03_GLOBAL_RNG)
        assert any("unseeded global-RNG" in f.message for f in found)

    def test_unseeded_default_rng_fires(self):
        found = self._run(RA03_UNSEEDED_NUMPY)
        assert any("without a seed" in f.message for f in found)

    def test_legacy_numpy_global_rng_fires(self):
        found = self._run(RA03_LEGACY_NUMPY)
        assert any("legacy numpy global-RNG" in f.message for f in found)

    def test_set_iteration_fires(self):
        found = self._run(RA03_SET_ITERATION)
        assert any("unordered set" in f.message for f in found)

    def test_seeded_sorted_and_membership_pass(self):
        assert self._run(RA03_CLEAN) == []

    def test_timer_at_declared_site_passes(self):
        assert self._run(RA03_TIMING_ALLOWED, path="src/repro/core/benders.py") == []

    def test_timer_at_undeclared_site_fires(self):
        found = self._run(RA03_TIMING_FORBIDDEN)
        assert any("TIMING_ALLOWLIST" in f.message for f in found)

    def test_outside_deterministic_subtree_ignored(self):
        assert (
            findings_for(
                DeterminismChecker(), {"src/repro/api/server.py": RA03_WALL_CLOCK}
            )
            == []
        )

    def test_workloads_subtree_is_covered(self):
        found = self._run(RA03_WALL_CLOCK, path="src/repro/workloads/trace.py")
        assert any("wall-clock" in f.message for f in found)

    def test_seeded_workloads_trace_passes(self):
        assert self._run(RA03_CLEAN, path="src/repro/workloads/trace.py") == []


# --------------------------------------------------------------------- #
# RA04 -- wire contract
# --------------------------------------------------------------------- #
RA04_UNREAD_KEY = '''
def stamp(payload):
    payload["schema_version"] = 1
    return payload

class Report:
    def to_dict(self):
        return stamp({"epoch": self.epoch, "extra": self.extra})

    @classmethod
    def from_dict(cls, payload):
        if payload.get("schema_version") != 1:
            raise ValueError("bad version")
        return cls(epoch=int(payload["epoch"]))
'''

RA04_NO_FROM_DICT = '''
class Report:
    def to_dict(self):
        return {"schema_version": 1, "epoch": self.epoch}
'''

RA04_CLEAN = '''
class Report:
    def to_dict(self):
        return {"schema_version": 1, "epoch": self.epoch, "note": self.note}

    @classmethod
    def from_dict(cls, payload):
        if payload.get("schema_version") != 1:
            raise ValueError("bad version")
        return cls(epoch=int(payload["epoch"]), note=payload.get("note", ""))
'''

RA04_DELEGATED = '''
class Plan:
    def payload(self):
        return {"schema_version": 1, "seed": self.seed, "ghost": 1}

    def to_dict(self):
        return self.payload()

    @classmethod
    def from_dict(cls, payload):
        return cls(seed=int(payload.get("seed", 0)))
'''

RA04_UNVERSIONED = '''
class Config:
    def to_dict(self):
        return {"workers": self.workers}
'''

RA04_ERRORS = '''
class BrokerError(Exception):
    code = "broker_error"

class ShinyError(BrokerError):
    code = "shiny_new"
'''

DESIGN_WITH_CODE = "| `ShinyError` | `shiny_new` | something new |\n| `BrokerError` | `broker_error` | base |"
DESIGN_WITHOUT_CODE = "| `BrokerError` | `broker_error` | base |"


class TestRA04:
    def test_written_but_unread_key_fires(self):
        found = findings_for(WireContractChecker(), {"src/repro/api/d.py": RA04_UNREAD_KEY})
        assert [f.symbol for f in found] == ["Report.from_dict"]
        assert "'extra'" in found[0].message

    def test_missing_from_dict_fires(self):
        found = findings_for(WireContractChecker(), {"src/repro/api/d.py": RA04_NO_FROM_DICT})
        assert any("no from_dict" in f.message for f in found)

    def test_round_tripping_class_passes(self):
        assert findings_for(WireContractChecker(), {"src/repro/api/d.py": RA04_CLEAN}) == []

    def test_delegated_payload_keys_are_checked(self):
        found = findings_for(WireContractChecker(), {"src/repro/faults/p.py": RA04_DELEGATED})
        assert any("'ghost'" in f.message for f in found)

    def test_unversioned_class_is_out_of_scope(self):
        assert (
            findings_for(WireContractChecker(), {"src/repro/util.py": RA04_UNVERSIONED})
            == []
        )

    def test_error_code_missing_from_design_fires(self):
        found = findings_for(
            WireContractChecker(),
            {"src/repro/api/errors.py": RA04_ERRORS},
            documents={"DESIGN.md": DESIGN_WITHOUT_CODE},
        )
        assert any("shiny_new" in f.message for f in found)

    def test_error_code_documented_in_design_passes(self):
        assert (
            findings_for(
                WireContractChecker(),
                {"src/repro/api/errors.py": RA04_ERRORS},
                documents={"DESIGN.md": DESIGN_WITH_CODE},
            )
            == []
        )


# --------------------------------------------------------------------- #
# RA05 -- executor safety
# --------------------------------------------------------------------- #
RA05_LAMBDA = '''
def sweep(executor, items):
    return executor.map(lambda item: item * 2, items)
'''

RA05_CLOSURE = '''
def sweep(executor, items, scale):
    def run(item):
        return item * scale
    return executor.map(run, items)
'''

RA05_BOUND_METHOD = '''
class Orchestrator:
    def sweep(self, executor, items):
        return executor.map(self.solver.solve, items)
'''

RA05_CLEAN = '''
from functools import partial

def run_one(item):
    return item * 2

def sweep(executor, items):
    return executor.map(run_one, items)

def sweep_partial(executor, items):
    return executor.map(partial(run_one), items)

def unrelated(mapping, items):
    return mapping.map(lambda item: item, items)
'''


class TestRA05:
    def test_lambda_fires(self):
        found = findings_for(ExecutorSafetyChecker(), {"src/repro/x.py": RA05_LAMBDA})
        assert any("lambda" in f.message for f in found)

    def test_local_closure_fires(self):
        found = findings_for(ExecutorSafetyChecker(), {"src/repro/x.py": RA05_CLOSURE})
        assert any("closure 'run'" in f.message for f in found)

    def test_bound_method_fires(self):
        found = findings_for(ExecutorSafetyChecker(), {"src/repro/x.py": RA05_BOUND_METHOD})
        assert any("bound method" in f.message for f in found)

    def test_module_level_and_partial_pass(self):
        assert findings_for(ExecutorSafetyChecker(), {"src/repro/x.py": RA05_CLEAN}) == []
