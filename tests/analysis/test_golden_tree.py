"""Golden run: the committed tree must be clean under the committed baseline.

This is the in-process twin of the CI `analysis` job.  It fails when a new
violation lands, when a baseline entry goes stale, or when the baseline file
itself is malformed -- keeping `analysis-baseline.toml` honest.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineEntry, ProjectTree, run_checkers
from repro.analysis.core import BASELINE_FILENAME

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def tree():
    return ProjectTree.load(REPO_ROOT)


@pytest.fixture(scope="module")
def baseline():
    return Baseline.parse((REPO_ROOT / BASELINE_FILENAME).read_text(encoding="utf-8"))


class TestGoldenTree:
    def test_committed_tree_is_clean(self, tree, baseline):
        report = run_checkers(tree, baseline=baseline)
        assert report.clean, "\n" + report.render()

    def test_every_baseline_entry_is_exercised(self, tree, baseline):
        """Each committed suppression must match a live finding (no drift)."""
        report = run_checkers(tree, baseline=baseline)
        assert len(report.suppressed) == len(baseline.entries)

    def test_added_bogus_entry_is_reported_stale(self, tree, baseline):
        padded = Baseline(
            [
                *baseline.entries,
                BaselineEntry(
                    "RA01",
                    "src/repro/api/broker.py",
                    "SliceBroker.no_such_method",
                    "synthetic staleness probe",
                ),
            ]
        )
        report = run_checkers(tree, baseline=padded)
        assert not report.clean
        assert [e.symbol for e in report.stale_entries] == [
            "SliceBroker.no_such_method"
        ]

    def test_tree_covers_the_full_source_layout(self, tree):
        """Sanity-guard: the loader actually walked src/ (not an empty glob)."""
        paths = {module.path for module in tree.modules}
        assert any(p.endswith("repro/api/broker.py") for p in paths)
        assert any(p.endswith("repro/core/benders.py") for p in paths)
        assert len(paths) > 50
        assert tree.document("DESIGN.md")
