"""Framework-level tests of repro.analysis: findings, baseline, CLI."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    ProjectTree,
    default_checkers,
    run_checkers,
)
from repro.analysis.core import Checker

REPO_ROOT = Path(__file__).resolve().parents[2]


class _OneShotChecker(Checker):
    """Test double: fires one fixed finding per module."""

    rule = "RA99"
    title = "test rule"
    description = "fires once per module"

    def check(self, tree):
        for module in tree.modules:
            yield Finding(
                rule=self.rule,
                path=module.path,
                line=1,
                symbol="<module>",
                message="synthetic finding",
            )


class TestFindings:
    def test_render_is_file_line_addressable(self):
        finding = Finding("RA01", "src/x.py", 12, "Cls.meth", "broke the rule")
        assert finding.render() == "src/x.py:12: RA01 [Cls.meth] broke the rule"

    def test_key_ignores_line(self):
        a = Finding("RA01", "src/x.py", 12, "Cls.meth", "m1")
        b = Finding("RA01", "src/x.py", 99, "Cls.meth", "m2")
        assert a.key == b.key

    def test_report_sorts_deterministically(self):
        tree = ProjectTree.from_sources({"b.py": "x = 1", "a.py": "y = 2"})
        report = run_checkers(tree, checkers=[_OneShotChecker()])
        assert [f.path for f in report.findings] == ["a.py", "b.py"]


class TestBaseline:
    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            Baseline.parse('[[suppress]]\nrule = "RA01"\npath = "x.py"\n')

    def test_empty_reason_rejected(self):
        text = (
            '[[suppress]]\nrule = "RA01"\npath = "x.py"\n'
            'symbol = "f"\nreason = "  "\n'
        )
        with pytest.raises(ValueError, match="justification"):
            Baseline.parse(text)

    def test_entry_suppresses_matching_finding(self):
        tree = ProjectTree.from_sources({"a.py": "x = 1"})
        baseline = Baseline(
            [BaselineEntry("RA99", "a.py", "<module>", "grandfathered for the test")]
        )
        report = run_checkers(tree, checkers=[_OneShotChecker()], baseline=baseline)
        assert report.clean
        assert len(report.suppressed) == 1

    def test_stale_entry_is_an_error(self):
        tree = ProjectTree.from_sources({"a.py": "x = 1"})
        baseline = Baseline(
            [
                BaselineEntry("RA99", "a.py", "<module>", "used"),
                BaselineEntry("RA99", "a.py", "gone_function", "stale"),
            ]
        )
        report = run_checkers(tree, checkers=[_OneShotChecker()], baseline=baseline)
        assert not report.clean
        assert [e.symbol for e in report.stale_entries] == ["gone_function"]
        assert "STALE-BASELINE" in report.render()

    def test_entry_for_unscanned_file_is_not_judged_stale(self):
        tree = ProjectTree.from_sources({"a.py": "x = 1"})
        baseline = Baseline(
            [BaselineEntry("RA99", "other/b.py", "<module>", "out of scope")]
        )
        report = run_checkers(tree, checkers=[_OneShotChecker()], baseline=baseline)
        assert report.stale_entries == []


class TestReportShapes:
    def test_json_shape(self):
        tree = ProjectTree.from_sources({"a.py": "x = 1"})
        report = run_checkers(tree, checkers=[_OneShotChecker()])
        payload = json.loads(report.to_json())
        assert payload["clean"] is False
        assert payload["findings"][0] == {
            "rule": "RA99",
            "path": "a.py",
            "line": 1,
            "symbol": "<module>",
            "message": "synthetic finding",
        }
        assert payload["stale_baseline_entries"] == []

    def test_clean_render_mentions_suppressed_count(self):
        tree = ProjectTree.from_sources({})
        report = run_checkers(tree, checkers=[_OneShotChecker()])
        assert "clean" in report.render()


class TestDefaultCheckers:
    def test_all_five_rules_registered_in_order(self):
        assert [c.rule for c in default_checkers()] == [
            "RA01",
            "RA02",
            "RA03",
            "RA04",
            "RA05",
        ]

    def test_rules_carry_title_and_description(self):
        for checker in default_checkers():
            assert checker.title
            assert checker.description


class TestCli:
    def _run(self, *argv: str, cwd: Path = REPO_ROOT):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True,
            text=True,
            cwd=cwd,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )

    def test_check_clean_tree_exits_zero(self):
        result = self._run("check")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_check_json_format(self):
        result = self._run("check", "--format", "json")
        payload = json.loads(result.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_check_writes_output_file(self, tmp_path):
        out = tmp_path / "findings.json"
        result = self._run("check", "--output", str(out))
        assert result.returncode == 0
        assert json.loads(out.read_text())["clean"] is True

    def test_check_unknown_path_is_usage_error(self):
        result = self._run("check", "no/such/dir")
        assert result.returncode == 2

    def test_list_rules(self):
        result = self._run("list-rules")
        assert result.returncode == 0
        for rule in ("RA01", "RA02", "RA03", "RA04", "RA05"):
            assert rule in result.stdout
