"""Trace model tests: wire round trips, byte-determinism and calibration.

The statistical claims (Poisson rate, arrival-window occupancy) run under
Hypothesis-driven seeds with sigma-scaled tolerances, so they hold for
*every* seed, not one lucky one; the determinism claims compare full
columnar streams element-wise -- byte-identical, not "close".
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.catalogue import CITY_CATALOGUE, SliceClass, TemplateCatalogue
from repro.workloads.trace import (
    EpochBatch,
    FlashCrowd,
    TraceEvent,
    TraceSpec,
    diurnal_profile,
    iter_trace,
    trace_fingerprint,
)

pytestmark = pytest.mark.workloads


def poisson_only_spec(rate: float = 12.0, horizon: int = 96) -> TraceSpec:
    catalogue = TemplateCatalogue(
        name="poisson-only",
        classes=(
            SliceClass(
                name="embb",
                template="eMBB",
                elastic=True,
                weight=2.0,
                duration_epochs=(4, 12),
                mean_fraction=0.4,
                relative_std=0.2,
            ),
            SliceClass(
                name="urllc",
                template="uRLLC",
                elastic=False,
                weight=1.0,
                duration_epochs=(2, 6),
                mean_fraction=0.3,
            ),
        ),
    )
    return TraceSpec(
        name="flat",
        catalogue=catalogue,
        horizon_epochs=horizon,
        epochs_per_day=24,
        arrival_rate=rate,
        day_profile=(1.0,) * 24,
        week_profile=(1.0,),
    )


def window_only_spec(population: int, fraction: float, horizon: int = 60) -> TraceSpec:
    catalogue = TemplateCatalogue(
        name="window-only",
        classes=(
            SliceClass(
                name="iot",
                template="mMTC",
                elastic=False,
                weight=1.0,
                duration_epochs=(20, 40),
                mean_fraction=0.2,
                churn="window",
                arrival_window_fraction=fraction,
            ),
        ),
    )
    return TraceSpec(
        name="window",
        catalogue=catalogue,
        horizon_epochs=horizon,
        window_population=population,
    )


class TestSpecWireForm:
    def test_round_trip_is_identity(self):
        for spec in (poisson_only_spec(), city_spec()):
            assert TraceSpec.from_dict(spec.to_dict()) == spec

    def test_fingerprint_stable_across_instances(self):
        assert city_spec().fingerprint() == city_spec().fingerprint()

    def test_fingerprint_sensitive_to_every_knob(self):
        base = city_spec()
        assert (
            dataclasses.replace(base, arrival_rate=99.0).fingerprint()
            != base.fingerprint()
        )
        assert (
            dataclasses.replace(base, flash_crowds=()).fingerprint()
            != base.fingerprint()
        )

    def test_event_round_trip(self):
        event = TraceEvent(
            epoch=3,
            name="t-00003-000001",
            slice_class="embb",
            duration_epochs=7,
            demand_fraction=0.42,
            early_release_epoch=6,
            renewals=1,
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_day_profile_length_is_validated(self):
        with pytest.raises(ValueError, match="day_profile"):
            dataclasses.replace(poisson_only_spec(), day_profile=(1.0, 1.0))

    def test_rate_needs_matching_classes(self):
        window = window_only_spec(10, 0.5)
        with pytest.raises(ValueError, match="poisson"):
            dataclasses.replace(window, arrival_rate=5.0)


def city_spec() -> TraceSpec:
    return TraceSpec(
        name="city",
        catalogue=CITY_CATALOGUE,
        horizon_epochs=48,
        arrival_rate=10.0,
        window_population=60,
        day_profile=diurnal_profile(24),
        early_release_probability=0.1,
        renewal_probability=0.2,
        flash_crowds=(FlashCrowd(epoch=10, duration_epochs=3, magnitude=2.0),),
    )


class TestByteDeterminism:
    def test_identical_streams_for_same_spec_and_seed(self):
        spec = city_spec()
        for left, right in zip(iter_trace(spec, seed=7), iter_trace(spec, seed=7)):
            assert left.epoch == right.epoch
            for column in (
                "class_index",
                "duration_epochs",
                "demand_fraction",
                "early_release_epoch",
                "renewals",
            ):
                np.testing.assert_array_equal(
                    getattr(left, column), getattr(right, column)
                )

    def test_trace_fingerprint_matches_itself_and_splits_on_seed(self):
        spec = city_spec()
        assert trace_fingerprint(spec, seed=5) == trace_fingerprint(spec, seed=5)
        assert trace_fingerprint(spec, seed=5) != trace_fingerprint(spec, seed=6)

    def test_epoch_batches_are_order_independent(self):
        """Epoch e's batch must not depend on earlier epochs' draws."""
        spec = city_spec()
        streamed = {batch.epoch: batch for batch in iter_trace(spec, seed=11)}
        resumed = None
        for batch in iter_trace(spec, seed=11):
            if batch.epoch == spec.horizon_epochs - 1:
                resumed = batch
        np.testing.assert_array_equal(
            streamed[spec.horizon_epochs - 1].demand_fraction,
            resumed.demand_fraction,
        )

    def test_names_are_deterministic_and_unique(self):
        spec = city_spec()
        names: set[str] = set()
        for batch in iter_trace(spec, seed=2):
            batch_names = batch.names()
            assert len(set(batch_names)) == len(batch_names)
            assert names.isdisjoint(batch_names)
            names.update(batch_names)
        assert all(name.startswith("city-") for name in names)

    def test_events_match_columns(self):
        spec = city_spec()
        batch = next(iter_trace(spec, seed=4))
        events = list(batch.events())
        assert len(events) == len(batch)
        for serial, event in enumerate(events):
            assert isinstance(event, TraceEvent)
            assert event.epoch == batch.epoch
            assert event.duration_epochs == int(batch.duration_epochs[serial])


class TestPoissonCalibration:
    @given(seed=st.integers(0, 2**16), rate=st.floats(4.0, 40.0))
    @settings(max_examples=20, deadline=None)
    def test_flat_profile_total_matches_rate(self, seed, rate):
        spec = poisson_only_spec(rate=rate, horizon=96)
        total = sum(len(batch) for batch in iter_trace(spec, seed=seed))
        expected = rate * spec.horizon_epochs
        assert abs(total - expected) < 6.0 * math.sqrt(expected)

    def test_seasonal_profile_modulates_rate(self):
        spec = dataclasses.replace(
            poisson_only_spec(rate=200.0, horizon=240),
            day_profile=diurnal_profile(24, trough=0.2, peak=1.8),
        )
        by_hour = np.zeros(24)
        for batch in iter_trace(spec, seed=9):
            by_hour[batch.epoch % 24] += len(batch)
        trough = by_hour[:4].mean()
        peak = by_hour[10:14].mean()
        assert peak > 2.0 * trough

    def test_flash_crowd_spikes_arrivals(self):
        calm = poisson_only_spec(rate=50.0, horizon=40)
        shocked = dataclasses.replace(
            calm, flash_crowds=(FlashCrowd(epoch=20, duration_epochs=5, magnitude=4.0),)
        )
        assert shocked.rate_at(22) == pytest.approx(4.0 * calm.rate_at(22))
        assert shocked.rate_at(19) == pytest.approx(calm.rate_at(19))


class TestArrivalWindowOccupancy:
    @given(
        seed=st.integers(0, 2**16),
        population=st.integers(50, 800),
        fraction=st.floats(0.2, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_population_lands_exactly_and_inside_window(
        self, seed, population, fraction
    ):
        spec = window_only_spec(population, fraction, horizon=60)
        window = min(60, max(1, round(fraction * 60)))
        counts = np.zeros(spec.horizon_epochs, dtype=int)
        for batch in iter_trace(spec, seed=seed):
            counts[batch.epoch] += len(batch)
        assert counts.sum() == population
        assert counts[window:].sum() == 0

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_window_occupancy_is_near_uniform(self, seed):
        population, fraction, horizon = 3000, 0.5, 60
        spec = window_only_spec(population, fraction, horizon=horizon)
        window = round(fraction * horizon)
        counts = np.zeros(horizon, dtype=int)
        for batch in iter_trace(spec, seed=seed):
            counts[batch.epoch] += len(batch)
        mean = population / window
        sigma = math.sqrt(population * (1.0 / window) * (1.0 - 1.0 / window))
        assert np.all(np.abs(counts[:window] - mean) < 6.0 * sigma)


class TestBatchColumns:
    def test_durations_and_fractions_respect_class_bounds(self):
        spec = city_spec()
        classes = spec.catalogue.classes
        low = np.array([cls.duration_epochs[0] for cls in classes])
        high = np.array([cls.duration_epochs[1] for cls in classes])
        for batch in iter_trace(spec, seed=13):
            if not len(batch):
                continue
            assert np.all(batch.duration_epochs >= low[batch.class_index])
            assert np.all(batch.duration_epochs <= high[batch.class_index])
            assert np.all(batch.demand_fraction >= 0.01)
            assert np.all(batch.demand_fraction <= 1.0)

    def test_early_releases_precede_contract_end(self):
        spec = dataclasses.replace(city_spec(), early_release_probability=0.9)
        for batch in iter_trace(spec, seed=17):
            release = batch.early_release_epoch
            term = batch.epoch + batch.duration_epochs * (1 + batch.renewals)
            scheduled = release >= 0
            assert np.all(release[scheduled] > batch.epoch)
            assert np.all(release[scheduled] <= term[scheduled])

    def test_empty_epoch_yields_empty_batch(self):
        spec = TraceSpec(
            name="silent", catalogue=CITY_CATALOGUE, horizon_epochs=5
        )
        batches = list(iter_trace(spec, seed=1))
        assert len(batches) == 5
        assert all(isinstance(batch, EpochBatch) for batch in batches)
        assert all(len(batch) == 0 for batch in batches)
