"""Columnar replay engine tests: differential reference, invariants, TSDB.

``naive_replay`` re-implements the engine's semantics the slow, obvious
way -- a Python list of live slices scanned every epoch -- and the
differential tests require the wheel-based engine to match it metric for
metric.  Conservation and capacity invariants then hold on the city
catalogue, and the per-epoch aggregation is shown to land on a bounded
ring-buffer TSDB.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.controlplane.tsdb import TimeSeriesStore
from repro.workloads.campaigns import QUICK_TRACE
from repro.workloads.catalogue import CITY_CATALOGUE
from repro.workloads.replay import REPLAY_METRICS, ColumnarReplayEngine
from repro.workloads.trace import TraceSpec, iter_trace

pytestmark = pytest.mark.workloads


def small_spec(**overrides) -> TraceSpec:
    base = dict(
        name="small",
        catalogue=CITY_CATALOGUE,
        horizon_epochs=40,
        arrival_rate=8.0,
        window_population=30,
        early_release_probability=0.15,
        renewal_probability=0.3,
        aggregate_capacity_mbps=20_000.0,
    )
    base.update(overrides)
    return TraceSpec(**base)


def naive_replay(spec: TraceSpec, seed: int) -> dict[str, list[float]]:
    """O(live)-per-epoch reference with the engine's exact semantics."""
    classes = spec.catalogue.classes
    live: list[dict] = []  # {"load", "reward", "depart", "tenant_release"}
    renewal_ticks: dict[int, int] = {}
    history: dict[str, list[float]] = {name: [] for name in REPLAY_METRICS}
    for batch in iter_trace(spec, seed):
        epoch = batch.epoch
        released = expired = 0
        still = []
        for entry in live:
            if entry["depart"] == epoch:
                if entry["tenant_release"]:
                    released += 1
                else:
                    expired += 1
            else:
                still.append(entry)
        live = still
        renewed = renewal_ticks.pop(epoch, 0)

        occupancy = sum(entry["load"] for entry in live)
        arrivals = []
        for row in range(len(batch)):
            cls = classes[int(batch.class_index[row])]
            load = cls.load_estimate_mbps(float(batch.demand_fraction[row]))
            arrivals.append(
                {
                    "row": row,
                    "load": load,
                    "reward": cls.slice_template().reward,
                    "density": cls.slice_template().reward / load,
                }
            )
        # Reward-density greedy, deterministic arrival order breaking ties
        # (argsort(-density, stable) admits the *prefix* that fits: a big
        # arrival that overflows the budget blocks everything after it).
        order = sorted(arrivals, key=lambda a: -a["density"])
        budget = spec.aggregate_capacity_mbps - occupancy
        booked = 0.0
        admitted_rows = []
        for entry in order:
            if booked + entry["load"] <= budget:
                booked += entry["load"]
                admitted_rows.append(entry)
            else:
                break
        for entry in admitted_rows:
            row = entry["row"]
            duration = int(batch.duration_epochs[row])
            renewals = int(batch.renewals[row])
            release = int(batch.early_release_epoch[row])
            term_end = epoch + duration * (1 + renewals)
            depart = release if release >= 0 else term_end
            first_term = epoch + duration
            if renewals > 0 and depart > first_term:
                renewal_ticks[first_term] = renewal_ticks.get(first_term, 0) + 1
            live.append(
                {
                    "load": entry["load"],
                    "reward": entry["reward"],
                    "depart": depart,
                    "tenant_release": release >= 0,
                }
            )
        occupancy = sum(entry["load"] for entry in live)
        metrics = {
            "arrivals": float(len(batch)),
            "admitted": float(len(admitted_rows)),
            "rejected": float(len(batch) - len(admitted_rows)),
            "released": float(released),
            "expired": float(expired),
            "renewed": float(renewed),
            "live": float(len(live)),
            "occupancy_mbps": occupancy,
            "revenue_rate": sum(entry["reward"] for entry in live),
        }
        for name in REPLAY_METRICS:
            history[name].append(metrics[name])
    return history


class TestDifferentialAgainstNaiveReference:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_engine_matches_reference_metric_streams(self, seed):
        spec = small_spec()
        result = ColumnarReplayEngine(spec, seed=seed).run()
        reference = naive_replay(spec, seed)
        for name in ("arrivals", "admitted", "rejected", "released", "expired",
                     "renewed", "live"):
            assert result.history[name] == reference[name], name
        np.testing.assert_allclose(
            result.history["occupancy_mbps"], reference["occupancy_mbps"], rtol=1e-9
        )
        np.testing.assert_allclose(
            result.history["revenue_rate"], reference["revenue_rate"], rtol=1e-9
        )

    def test_engine_matches_reference_under_pressure(self):
        spec = small_spec(aggregate_capacity_mbps=2_000.0, arrival_rate=20.0)
        result = ColumnarReplayEngine(spec, seed=3).run()
        reference = naive_replay(spec, 3)
        assert result.history["admitted"] == reference["admitted"]
        assert result.history["rejected"] == reference["rejected"]
        assert result.total_rejected > 0  # the pressure case must actually reject


class TestInvariants:
    def test_conservation(self):
        result = ColumnarReplayEngine(small_spec(), seed=5).run()
        assert result.total_arrivals == result.total_admitted + result.total_rejected
        assert (
            result.total_admitted
            == result.total_released + result.total_expired + result.final_live
        )

    def test_capacity_never_exceeded(self):
        spec = small_spec(aggregate_capacity_mbps=3_000.0, arrival_rate=25.0)
        result = ColumnarReplayEngine(spec, seed=2).run()
        assert max(result.history["occupancy_mbps"]) <= spec.aggregate_capacity_mbps
        assert result.peak_occupancy_mbps <= spec.aggregate_capacity_mbps

    def test_live_history_is_consistent_with_deltas(self):
        result = ColumnarReplayEngine(small_spec(), seed=9).run()
        live = 0
        for epoch in range(result.epochs):
            live += int(result.history["admitted"][epoch])
            live -= int(result.history["released"][epoch])
            live -= int(result.history["expired"][epoch])
            assert live == int(result.history["live"][epoch])
        assert live == result.final_live

    def test_quick_trace_is_non_trivial(self):
        result = ColumnarReplayEngine(QUICK_TRACE, seed=1).run()
        assert result.total_admitted > 0
        assert result.total_released > 0
        assert result.total_expired > 0
        assert result.total_renewed > 0
        assert result.peak_live > 0


class TestDeterminismAndAggregation:
    def test_stream_fingerprint_is_stable_and_seed_sensitive(self):
        spec = small_spec()
        first = ColumnarReplayEngine(spec, seed=4).run()
        second = ColumnarReplayEngine(spec, seed=4).run()
        other = ColumnarReplayEngine(spec, seed=5).run()
        assert first.stream_fingerprint == second.stream_fingerprint
        assert first.stream_fingerprint != other.stream_fingerprint

    def test_tsdb_retention_bounds_series(self):
        spec = small_spec(horizon_epochs=48)
        engine = ColumnarReplayEngine(spec, seed=1, retention_epochs=12)
        engine.run()
        series = engine.tsdb.per_epoch_aggregate(
            "replay.live", tags={"trace": spec.name}
        )
        assert sorted(series) == list(range(36, 48))

    def test_external_tsdb_receives_every_metric(self):
        store = TimeSeriesStore()
        spec = small_spec(horizon_epochs=10)
        ColumnarReplayEngine(spec, seed=1, tsdb=store).run()
        for name in REPLAY_METRICS:
            values = store.values(f"replay.{name}", tags={"trace": spec.name})
            assert len(values) == spec.horizon_epochs

    def test_tsdb_and_retention_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            ColumnarReplayEngine(
                small_spec(), tsdb=TimeSeriesStore(), retention_epochs=4
            )

    def test_on_epoch_callback_sees_every_epoch(self):
        seen: list[int] = []
        spec = small_spec(horizon_epochs=15)
        ColumnarReplayEngine(spec, seed=1).run(
            on_epoch=lambda epoch, metrics: seen.append(epoch)
        )
        assert seen == list(range(15))

    def test_memory_tracks_peak_live_not_trace_length(self):
        spec = dataclasses.replace(
            small_spec(), horizon_epochs=120, arrival_rate=10.0
        )
        engine = ColumnarReplayEngine(spec, seed=6)
        result = engine.run()
        assert result.total_admitted > result.peak_live  # slots were recycled
