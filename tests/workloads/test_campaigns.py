"""The ``trace-replay`` run kind through the campaign machinery and CLI.

The run kind must be lazily resolvable (registered via
``_RUN_KIND_MODULES``), content-addressed-cacheable like every other kind,
and reachable from ``python -m repro.experiments run trace-replay``.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.campaign import RunSpec, execute_spec
from repro.experiments.cli import CAMPAIGNS, main
from repro.workloads.campaigns import (
    CITY_TRACE,
    QUICK_TRACE,
    format_trace_replay,
    reduce_trace_replay,
    trace_replay_campaign,
)
from repro.workloads.catalogue import CITY_CATALOGUE
from repro.workloads.replay import ColumnarReplayEngine
from repro.workloads.trace import TraceSpec

pytestmark = pytest.mark.workloads


def tiny_trace() -> TraceSpec:
    return TraceSpec(
        name="tiny",
        catalogue=CITY_CATALOGUE,
        horizon_epochs=12,
        arrival_rate=4.0,
        renewal_probability=0.2,
        aggregate_capacity_mbps=10_000.0,
    )


class TestRunKind:
    def test_execute_spec_resolves_trace_replay_lazily(self):
        spec = RunSpec(
            experiment="t",
            kind="trace-replay",
            params={"trace": tiny_trace().to_dict(), "retention_epochs": None},
            seed=7,
        )
        record = execute_spec(spec)
        assert record.summary["epochs"] == 12
        assert record.summary["total_arrivals"] >= 0
        assert record.extras["trace"] == "tiny"
        assert set(record.extras["series"]) == {
            "live", "admitted", "rejected", "occupancy_mbps", "revenue_rate"
        }

    def test_run_matches_direct_engine(self):
        trace = tiny_trace()
        spec = RunSpec(
            experiment="t",
            kind="trace-replay",
            params={"trace": trace.to_dict(), "retention_epochs": None},
            seed=7,
        )
        record = execute_spec(spec)
        direct = ColumnarReplayEngine(trace, seed=7).run()
        assert record.summary == direct.summary()
        assert record.extras["stream_fingerprint"] == direct.stream_fingerprint


class TestCampaign:
    def test_caches_and_resumes(self, tmp_path):
        campaign = trace_replay_campaign(tiny_trace(), num_replays=2)
        first = campaign.run(cache_dir=tmp_path)
        assert (first.num_executed, first.num_cached) == (2, 0)
        second = campaign.run(cache_dir=tmp_path)
        assert (second.num_executed, second.num_cached) == (0, 2)
        assert [r.as_dict() for r in first.records] == [
            r.as_dict() for r in second.records
        ]

    def test_replays_draw_independent_seeds(self):
        campaign = trace_replay_campaign(tiny_trace(), num_replays=3)
        seeds = [spec.seed for spec in campaign.resolved_specs()]
        assert len(set(seeds)) == 3

    def test_reduce_and_format(self, tmp_path):
        campaign = trace_replay_campaign(tiny_trace(), num_replays=2)
        rows = reduce_trace_replay(campaign.run(cache_dir=tmp_path))
        assert [row.replay_index for row in rows] == [0, 1]
        rendered = format_trace_replay(rows)
        assert "replay 0" in rendered
        assert "min peak live across replays" in rendered

    def test_presets_are_wire_stable(self):
        for preset in (QUICK_TRACE, CITY_TRACE):
            assert TraceSpec.from_dict(preset.to_dict()) == preset
        assert CITY_TRACE.arrival_rate >= 100 * QUICK_TRACE.arrival_rate


class TestCli:
    def test_list_includes_trace_replay(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        assert "trace-replay" in out.getvalue()

    def test_registered_entry_builds_quick_campaign(self):
        campaign, render = CAMPAIGNS["trace-replay"].build(False)
        assert campaign.name == f"trace-replay-{QUICK_TRACE.name}"
        assert all(spec.kind == "trace-replay" for spec in campaign.specs)

    def test_full_profile_uses_city_trace(self):
        campaign, _ = CAMPAIGNS["trace-replay"].build(True)
        assert campaign.name == f"trace-replay-{CITY_TRACE.name}"

    def test_run_command_renders_summary(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["run", "trace-replay", "--cache-dir", str(tmp_path)], out=out
        )
        assert code == 0
        assert "min peak live across replays" in out.getvalue()
