"""Golden broker-fidelity replay: a small trace through the real facade.

A short city-block trace (short contracts, early releases and renewals all
firing inside the horizon) drives ``SliceBroker.submit_batch`` /
``release`` / ``advance_epoch`` via :class:`BrokerReplayDriver`, and the
resulting per-epoch reports are pinned under ``tests/golden/`` at 1e-9 --
any drift in the trace generator, the driver's scheduling or the admission
stack shows up here as a loud diff.

To regenerate after an *intentional* behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/workloads/test_golden_replay.py

and commit the refreshed JSON together with the change that caused it.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import pytest

from repro.api import SliceBroker
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators
from repro.workloads.catalogue import SliceClass, TemplateCatalogue
from repro.workloads.replay import BrokerReplayDriver
from repro.workloads.trace import TraceSpec

pytestmark = [pytest.mark.workloads, pytest.mark.golden]

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "golden" / "trace_replay_small.json"
)
UPDATE_ENV = "REPRO_UPDATE_GOLDEN"
SEED = 29
REL_TOL = 1e-9
ABS_TOL = 1e-12


def small_trace() -> TraceSpec:
    catalogue = TemplateCatalogue(
        name="golden-block",
        classes=(
            SliceClass(
                name="embb-short",
                template="eMBB",
                elastic=True,
                weight=2.0,
                duration_epochs=(2, 5),
                mean_fraction=0.4,
                relative_std=0.2,
            ),
            SliceClass(
                name="urllc-short",
                template="uRLLC",
                elastic=False,
                weight=1.0,
                duration_epochs=(2, 4),
                mean_fraction=0.3,
                penalty_factor=2.0,
            ),
        ),
    )
    return TraceSpec(
        name="golden",
        catalogue=catalogue,
        horizon_epochs=10,
        arrival_rate=3.0,
        day_profile=(1.0,) * 24,
        week_profile=(1.0,),
        early_release_probability=0.25,
        renewal_probability=0.4,
    )


def replay_reports() -> list[dict]:
    broker = SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver()
    )
    return BrokerReplayDriver(broker, small_trace(), seed=SEED).run()


def load_golden() -> dict:
    if os.environ.get(UPDATE_ENV):
        payload = {
            "schema": 1,
            "seed": SEED,
            "spec_fingerprint": small_trace().fingerprint(),
            "reports": replay_reports(),
        }
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return payload
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing golden file {GOLDEN_PATH}; run with {UPDATE_ENV}=1 to create it"
        )
    return json.loads(GOLDEN_PATH.read_text())


def assert_close(fresh, reference, path=""):
    """Structural equality with 1e-9 relative tolerance on floats."""
    if isinstance(reference, float) or isinstance(fresh, float):
        assert math.isclose(
            float(fresh), float(reference), rel_tol=REL_TOL, abs_tol=ABS_TOL
        ), f"{path}: {fresh!r} != {reference!r}"
    elif isinstance(reference, dict):
        assert sorted(fresh) == sorted(reference), path
        for key in reference:
            assert_close(fresh[key], reference[key], f"{path}.{key}")
    elif isinstance(reference, list):
        assert len(fresh) == len(reference), path
        for index, (f, r) in enumerate(zip(fresh, reference)):
            assert_close(f, r, f"{path}[{index}]")
    else:
        assert fresh == reference, f"{path}: {fresh!r} != {reference!r}"


class TestGoldenBrokerReplay:
    def test_spec_fingerprint_is_pinned(self):
        golden = load_golden()
        assert small_trace().fingerprint() == golden["spec_fingerprint"]

    def test_fresh_replay_matches_reference(self):
        golden = load_golden()
        assert_close(replay_reports(), golden["reports"], "reports")

    def test_golden_trace_exercises_every_lifecycle_path(self):
        golden = load_golden()
        reports = golden["reports"]
        assert any(report["accepted"] for report in reports)
        assert any(report["expired"] for report in reports)
        assert any(report["released"] for report in reports)
        assert any(report["renewed"] for report in reports)
