"""Failed-epoch recovery across fault classes.

Extends the PR-5 failed-epoch test into a parameterized suite: after every
fault class that fails an epoch, ``status()`` / ``list_slices()`` stay
coherent, no event from the failed attempt is published, and a clean retry
converges to the same control-plane state as a never-faulted twin.
"""

from __future__ import annotations

import pytest

from repro.api import (
    LifecycleError,
    SliceBroker,
    SliceRequestV1,
    SolverError,
)
from repro.core.milp_solver import DirectMILPSolver
from repro.faults import (
    HOOK_CLOUD_APPLY,
    HOOK_RAN_APPLY,
    HOOK_TRANSPORT_APPLY,
    FaultKind,
    FaultPlan,
    FaultSpec,
    control_plane_fingerprint,
)
from repro.topology import operators

CONTROLLER_HOOKS = (HOOK_RAN_APPLY, HOOK_TRANSPORT_APPLY, HOOK_CLOUD_APPLY)


def request(name: str, arrival: int = 0, duration: int = 4) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, "uRLLC", duration_epochs=duration, arrival_epoch=arrival
    )


def make_broker(plan: FaultPlan | None = None, solver=None) -> SliceBroker:
    broker = SliceBroker(
        topology=operators.testbed_topology(), solver=solver or DirectMILPSolver()
    )
    if plan is not None:
        broker.enable_chaos(plan)
    broker.submit(request("s1", duration=6))
    broker.submit(request("s2", arrival=1, duration=4))
    return broker


def crash_plan(hook: str) -> FaultPlan:
    return FaultPlan.of(FaultSpec(hook=hook, epoch=1, kind=FaultKind.CRASH))


class OneShotCrashSolver:
    """Unchained solver that crashes exactly once, at a chosen epoch call."""

    def __init__(self, crash_on_call: int):
        self.inner = DirectMILPSolver()
        self.calls = 0
        self.crash_on_call = crash_on_call

    def solve(self, problem):
        self.calls += 1
        if self.calls == self.crash_on_call:
            raise RuntimeError("solver died mid-epoch")
        return self.inner.solve(problem)


@pytest.mark.parametrize("hook", CONTROLLER_HOOKS, ids=lambda h: h.split(".")[1])
class TestControllerCrashRecovery:
    def test_queryable_state_is_coherent_after_the_failure(self, hook):
        broker = make_broker(crash_plan(hook))
        published = []
        broker.events.subscribe(published.append)
        broker.advance_epoch(0)
        events_before = len(published)

        with pytest.raises(SolverError):
            broker.advance_epoch(1)
        # The failed attempt published nothing and the registry still answers
        # coherently: s1 is admitted from epoch 0, s2 was pulled back into
        # the queue by the rollback.
        assert len(published) == events_before
        assert broker.status("s1").state == "admitted"
        assert broker.status("s2").state == "queued"
        assert {s.name for s in broker.list_slices()} == {"s1", "s2"}
        assert broker.pending_count == 1

    def test_clean_retry_publishes_once_and_matches_a_never_faulted_twin(self, hook):
        faulted = make_broker(crash_plan(hook))
        twin = make_broker(FaultPlan.empty())
        published = []
        faulted.events.subscribe(published.append)

        faulted.advance_epoch(0)
        twin.advance_epoch(0)
        with pytest.raises(SolverError):
            faulted.advance_epoch(1)
        for epoch in range(1, 4):
            faulted_report = faulted.advance_epoch(epoch)
            twin_report = twin.advance_epoch(epoch)
            assert faulted_report.accepted == twin_report.accepted
            assert faulted_report.rejected == twin_report.rejected
            assert control_plane_fingerprint(
                faulted.orchestrator
            ) == control_plane_fingerprint(twin.orchestrator)
        # s2's verdict was published exactly once despite the extra attempt.
        verdicts = [e for e in published if e.slice_name == "s2"]
        assert len(verdicts) == 1
        assert verdicts[0].epoch == 1


class TestUnchainedSolverCrashRecovery:
    def test_crash_rolls_back_and_the_retry_recovers(self):
        # Call 1 solves epoch 0; call 2 (epoch 1) crashes.  Without the
        # safeguard chain the exception escapes as SolverError.  The twin
        # uses the same wrapper (armed to never fire) so the decision-reuse
        # signatures -- which name the solver -- stay comparable.
        faulted = make_broker(solver=OneShotCrashSolver(crash_on_call=2))
        twin = make_broker(solver=OneShotCrashSolver(crash_on_call=0))
        faulted.advance_epoch(0)
        twin.advance_epoch(0)

        before = control_plane_fingerprint(faulted.orchestrator)
        with pytest.raises(SolverError, match="solver died"):
            faulted.advance_epoch(1)
        assert control_plane_fingerprint(faulted.orchestrator) == before
        assert faulted.status("s2").state == "queued"

        for epoch in range(1, 4):
            faulted.advance_epoch(epoch)
            twin.advance_epoch(epoch)
        assert control_plane_fingerprint(
            faulted.orchestrator
        ) == control_plane_fingerprint(twin.orchestrator)
        assert faulted.status("s2").to_dict() == twin.status("s2").to_dict()


class TestInvalidRenewalRecovery:
    def test_lifecycle_error_restores_the_pre_epoch_state(self):
        broker = make_broker()
        broker.advance_epoch(0)
        # Smuggle an invalid renewal straight into the slice manager, past
        # broker intake (same recipe as the error-taxonomy tests).
        broker.orchestrator.slice_manager.submit(
            request("s1", arrival=1).to_request()
        )
        before = control_plane_fingerprint(broker.orchestrator)
        with pytest.raises(LifecycleError):
            broker.advance_epoch(1)
        assert control_plane_fingerprint(broker.orchestrator) == before
        # Still coherent and still failing deterministically: the poisoned
        # queue entry survives the rollback (it predates the epoch).
        assert broker.status("s1").state == "admitted"
        with pytest.raises(LifecycleError):
            broker.advance_epoch(1)
        assert control_plane_fingerprint(broker.orchestrator) == before
