"""Regression tests for the slice-lifecycle fixes.

Three bugs the scenario harness's churn families exposed:

* stale controller reservations: an idle epoch (last slice expired) used to
  return early without touching the controllers, which kept enforcing the
  previous decision's reservations forever;
* silently-dropped renewals: a request re-submitted under the name of an
  EXPIRED/REJECTED slice was neither registered nor treated as a candidate,
  so it vanished without admission or rejection;
* warm-state wipe: the idle branch reset ``_last_solve``, forcing a cold
  re-solve when the same slices returned.
"""

import pytest

from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
from repro.controlplane.state import SliceRegistry, SliceState, SliceStateError
from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.core.slices import URLLC_TEMPLATE, SliceRequest
from tests.conftest import build_tiny_topology


def urllc(name, arrival=0, duration=24):
    return SliceRequest(
        name=name, template=URLLC_TEMPLATE, arrival_epoch=arrival, duration_epochs=duration
    )


@pytest.fixture
def orchestrator():
    topology = build_tiny_topology(edge_cpus=16.0, core_cpus=64.0, core_latency_ms=28.0)
    return E2EOrchestrator(
        topology=topology,
        solver=DirectMILPSolver(),
        config=OrchestratorConfig(epochs_per_day=24, samples_per_epoch=4),
    )


class TestIdleEpochClearsControllers:
    def test_reservations_released_after_final_slice_expires(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        orchestrator.run_epoch(0)
        controllers = orchestrator.controllers
        assert controllers.ran.shares("bs-0")  # enforced while admitted
        assert any(controllers.transport.reservations_mbps.values())
        assert any(controllers.cloud.reservations_cpus.values())

        orchestrator.run_epoch(1)
        decision = orchestrator.run_epoch(2)  # u1 expired: idle epoch
        assert decision.allocations == {}
        for bs in ("bs-0", "bs-1"):
            assert controllers.ran.shares(bs) == {}
        assert all(not v for v in controllers.transport.reservations_mbps.values())
        assert all(not v for v in controllers.cloud.reservations_cpus.values())

    def test_headroom_fully_recovers_on_idle(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=1))
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        topology = orchestrator.topology
        for cu in topology.compute_unit_names:
            assert orchestrator.controllers.cloud.cu_headroom(cu) == pytest.approx(
                topology.compute_unit(cu).capacity_cpus
            )
        for link in topology.links:
            assert orchestrator.controllers.transport.link_headroom(
                link.key
            ) == pytest.approx(link.capacity_mbps)


class TestRenewals:
    def test_renewal_after_expiry_is_admitted_again(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        orchestrator.run_epoch(2)  # expires
        assert orchestrator.registry.record("u1").state is SliceState.EXPIRED

        orchestrator.submit_request(urllc("u1", arrival=3, duration=2))
        decision = orchestrator.run_epoch(3)
        assert decision.is_accepted("u1")
        record = orchestrator.registry.record("u1")
        assert record.state is SliceState.ADMITTED
        assert record.admitted_epoch == 3
        assert orchestrator.registry.renewal_count("u1") == 1
        archived = orchestrator.registry.archived_records("u1")
        assert len(archived) == 1 and archived[0].state is SliceState.EXPIRED

    def test_renewal_after_rejection_gets_a_fresh_verdict(self, orchestrator):
        # Two fresh uRLLC slices at full SLA do not fit the 16-CPU edge CU:
        # the second is rejected, then renewed after the first expires.
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        orchestrator.submit_request(urllc("u2", arrival=1, duration=4))
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        assert orchestrator.registry.record("u2").state is SliceState.REJECTED

        orchestrator.run_epoch(2)  # u1 expired; idle for committed purposes
        orchestrator.submit_request(urllc("u2", arrival=3, duration=4))
        decision = orchestrator.run_epoch(3)
        assert decision.is_accepted("u2")
        assert orchestrator.registry.renewal_count("u2") == 1

    def test_renewal_is_never_silently_dropped(self, orchestrator):
        """The original bug: the renewal vanished with no verdict at all."""
        orchestrator.submit_request(urllc("u1", arrival=0, duration=1))
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        orchestrator.submit_request(urllc("u1", arrival=2, duration=1))
        decision = orchestrator.run_epoch(2)
        assert "u1" in decision.allocations
        assert orchestrator.registry.record("u1").state in (
            SliceState.ADMITTED,
            SliceState.REJECTED,
        )

    def test_renewing_a_live_slice_is_rejected_at_intake(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=24))
        orchestrator.run_epoch(0)
        # u1 is ADMITTED until epoch 24: a same-name re-submission arriving
        # inside that window must fail loudly at submit time, before it can
        # enter (and poison) an epoch batch.
        with pytest.raises(SliceStateError, match="still admitted"):
            orchestrator.submit_request(urllc("u1", arrival=1, duration=24))

    def test_advance_renewal_booked_beyond_expiry_is_accepted(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        orchestrator.run_epoch(0)
        # Booked while u1 is still live, but arriving at its expiry epoch:
        # legal, and admitted again once collected.
        orchestrator.submit_request(urllc("u1", arrival=2, duration=2))
        orchestrator.run_epoch(1)
        decision = orchestrator.run_epoch(2)
        assert decision.is_accepted("u1")
        assert orchestrator.registry.renewal_count("u1") == 1

    def test_invalid_renewal_cannot_strand_batch_mates(self, orchestrator):
        """A live-name renewal smuggled past intake (direct manager submit)
        raises at collection -- the crash-consistent epoch rolls the whole
        batch back to the intake queue, so its mates are never silently
        lost: withdrawing the poisoned request unblocks them."""
        orchestrator.submit_request(urllc("u1", arrival=0, duration=24))
        orchestrator.run_epoch(0)
        orchestrator.slice_manager.submit(urllc("u1", arrival=1, duration=24))
        orchestrator.slice_manager.submit(urllc("u2", arrival=1, duration=24))
        with pytest.raises(SliceStateError):
            orchestrator.run_epoch(1)
        # The rollback returned both requests to the intake queue intact.
        assert orchestrator.slice_manager.pending_request("u1") is not None
        assert orchestrator.slice_manager.pending_request("u2") is not None
        assert "u2" not in orchestrator.registry
        # Cancelling the invalid renewal lets its batch mate proceed.
        orchestrator.slice_manager.withdraw("u1")
        decision = orchestrator.run_epoch(2)
        assert "u2" in decision.allocations
        assert orchestrator.registry.record("u2").state in (
            SliceState.ADMITTED,
            SliceState.REJECTED,
        )


class TestRegistryRenewSemantics:
    def test_renew_unknown_name_registers(self):
        registry = SliceRegistry()
        record = registry.renew(urllc("s"))
        assert record.state is SliceState.REQUESTED
        assert registry.renewal_count("s") == 0

    def test_renew_from_terminal_states(self):
        registry = SliceRegistry()
        registry.register(urllc("s", duration=1))
        registry.mark_rejected("s")
        renewed = registry.renew(urllc("s", arrival=5))
        assert renewed.state is SliceState.REQUESTED
        assert renewed.request.arrival_epoch == 5
        assert registry.renewal_count("s") == 1

    def test_renew_from_live_states_raises(self):
        registry = SliceRegistry()
        registry.register(urllc("s"))
        with pytest.raises(SliceStateError):
            registry.renew(urllc("s"))
        registry.mark_admitted("s", epoch=0, compute_unit="edge-cu", reservations_mbps={})
        with pytest.raises(SliceStateError):
            registry.renew(urllc("s"))


class TestWarmStateSurvivesIdleEpochs:
    def _orchestrator(self):
        topology = build_tiny_topology()
        orchestrator = E2EOrchestrator(
            topology=topology,
            solver=DirectMILPSolver(),
            config=OrchestratorConfig(samples_per_epoch=4),
        )
        orchestrator.forecast_overrides["u1"] = ForecastInput(
            lambda_hat_mbps=10.0, sigma_hat=0.2
        )
        return orchestrator

    def test_last_solve_survives_an_idle_epoch(self):
        orchestrator = self._orchestrator()
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        assert orchestrator._last_solve is not None
        key_before = orchestrator._last_solve[0]
        orchestrator.run_epoch(2)  # idle: u1 expired
        orchestrator.run_epoch(3)  # still idle
        assert orchestrator._last_solve is not None
        assert orchestrator._last_solve[0] == key_before

    def test_solver_warm_state_survives_idle_and_renewal(self):
        """After an idle gap, a renewed identical slice warm-starts Benders."""
        from repro.core.benders import BendersSolver

        topology = build_tiny_topology()
        orchestrator = E2EOrchestrator(
            topology=topology,
            solver=BendersSolver(master_time_limit_s=None, time_limit_s=None),
            config=OrchestratorConfig(samples_per_epoch=4),
        )
        orchestrator.forecast_overrides["u1"] = ForecastInput(
            lambda_hat_mbps=10.0, sigma_hat=0.2
        )
        orchestrator.submit_request(urllc("u1", arrival=0, duration=2))
        first = orchestrator.run_epoch(0)
        assert first.is_accepted("u1")
        orchestrator.run_epoch(1)
        orchestrator.run_epoch(2)  # idle
        orchestrator.submit_request(urllc("u1", arrival=3, duration=2))
        renewed = orchestrator.run_epoch(3)
        assert renewed.is_accepted("u1")
        # The renewal's candidate problem matches the original candidate
        # instance byte for byte (arrival epochs enter neither the warm-start
        # key nor the MILP), so the warm-start layer replays the previous
        # optimum without a single master iteration.
        assert renewed.stats.cuts_warm > 0
        assert renewed.stats.iterations == 0
