"""Tests for the RAN / transport / cloud domain controllers."""

import pytest

from repro.controlplane.controllers import ControllerSet
from repro.core.milp_solver import DirectMILPSolver


@pytest.fixture
def applied_controllers(mixed_problem):
    decision = DirectMILPSolver().solve(mixed_problem)
    controllers = ControllerSet.for_topology(mixed_problem.topology)
    controllers.apply(mixed_problem, decision)
    return mixed_problem, decision, controllers


class TestRanController:
    def test_shares_granted_for_accepted_slices(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for bs in problem.topology.base_station_names:
            shares = controllers.ran.shares(bs)
            accepted_at_bs = {
                name
                for name, alloc in decision.allocations.items()
                if alloc.accepted and bs in alloc.reservations_mbps
            }
            assert set(shares) == accepted_at_bs

    def test_served_bitrate_clipped_to_share(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        name = decision.accepted_tenants[0]
        bs = next(iter(decision.allocation(name).reservations_mbps))
        reservation = decision.allocation(name).reservations_mbps[bs]
        assert controllers.ran.served_bitrate(bs, name, reservation * 2) == pytest.approx(
            reservation, rel=1e-6
        )

    def test_reapplying_revokes_stale_shares(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        # Re-apply a decision where nothing is accepted: all shares revoked.
        import copy

        empty = copy.deepcopy(decision)
        for alloc in empty.allocations.values():
            object.__setattr__(alloc, "accepted", False)
        controllers.ran.apply(problem, empty)
        for bs in problem.topology.base_station_names:
            assert controllers.ran.shares(bs) == {}


class TestTransportController:
    def test_link_reservation_and_headroom(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for link in problem.topology.links:
            reserved = controllers.transport.link_reservation(link.key)
            headroom = controllers.transport.link_headroom(link.key)
            assert reserved >= 0.0
            assert headroom == pytest.approx(link.capacity_mbps - reserved)
            assert headroom >= -1e-6


class TestCloudController:
    def test_cu_reservation_within_capacity(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for cu in problem.topology.compute_units:
            reserved = controllers.cloud.cu_reservation(cu.name)
            assert 0.0 <= reserved <= cu.capacity_cpus + 1e-6
            assert controllers.cloud.cu_headroom(cu.name) == pytest.approx(
                cu.capacity_cpus - reserved
            )


class TestAtomicApply:
    """ControllerSet.apply is all-or-nothing across the three domains."""

    @pytest.mark.parametrize(
        "crash_at",
        [
            "controller.ran.apply",
            "controller.transport.apply",
            "controller.cloud.apply",
        ],
        ids=lambda hook: hook.split(".")[1],
    )
    def test_crash_in_any_domain_rolls_all_domains_back(
        self, mixed_problem, crash_at
    ):
        decision = DirectMILPSolver().solve(mixed_problem)
        controllers = ControllerSet.for_topology(mixed_problem.topology)

        def hook(name: str) -> None:
            if name == crash_at:
                raise RuntimeError(f"injected crash before {name}")

        controllers.fault_hook = hook
        before = controllers.snapshot()
        with pytest.raises(RuntimeError, match="injected crash"):
            controllers.apply(mixed_problem, decision)
        # No domain keeps a partial enforcement: the domains that applied
        # before the crash were rolled back with the rest.
        assert controllers.snapshot() == before

        # A clean retry enforces the full decision.
        controllers.fault_hook = None
        controllers.apply(mixed_problem, decision)
        assert any(
            controllers.ran.shares(bs)
            for bs in mixed_problem.topology.base_station_names
        )

    def test_partial_apply_never_mixes_two_decisions(self, mixed_problem):
        # Enforce decision A, then crash halfway through decision B: the
        # controllers must still enforce exactly A, not a RAN-of-B /
        # transport-of-A hybrid.
        decision = DirectMILPSolver().solve(mixed_problem)
        controllers = ControllerSet.for_topology(mixed_problem.topology)
        controllers.apply(mixed_problem, decision)
        enforced = controllers.snapshot()

        import copy

        empty = copy.deepcopy(decision)
        for alloc in empty.allocations.values():
            object.__setattr__(alloc, "accepted", False)

        def crash_transport(name: str) -> None:
            if name == "controller.transport.apply":
                raise RuntimeError("injected")

        controllers.fault_hook = crash_transport
        with pytest.raises(RuntimeError):
            controllers.apply(mixed_problem, empty)
        assert controllers.snapshot() == enforced
