"""Tests for the RAN / transport / cloud domain controllers."""

import pytest

from repro.controlplane.controllers import ControllerSet
from repro.core.milp_solver import DirectMILPSolver


@pytest.fixture
def applied_controllers(mixed_problem):
    decision = DirectMILPSolver().solve(mixed_problem)
    controllers = ControllerSet.for_topology(mixed_problem.topology)
    controllers.apply(mixed_problem, decision)
    return mixed_problem, decision, controllers


class TestRanController:
    def test_shares_granted_for_accepted_slices(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for bs in problem.topology.base_station_names:
            shares = controllers.ran.shares(bs)
            accepted_at_bs = {
                name
                for name, alloc in decision.allocations.items()
                if alloc.accepted and bs in alloc.reservations_mbps
            }
            assert set(shares) == accepted_at_bs

    def test_served_bitrate_clipped_to_share(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        name = decision.accepted_tenants[0]
        bs = next(iter(decision.allocation(name).reservations_mbps))
        reservation = decision.allocation(name).reservations_mbps[bs]
        assert controllers.ran.served_bitrate(bs, name, reservation * 2) == pytest.approx(
            reservation, rel=1e-6
        )

    def test_reapplying_revokes_stale_shares(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        # Re-apply a decision where nothing is accepted: all shares revoked.
        import copy

        empty = copy.deepcopy(decision)
        for alloc in empty.allocations.values():
            object.__setattr__(alloc, "accepted", False)
        controllers.ran.apply(problem, empty)
        for bs in problem.topology.base_station_names:
            assert controllers.ran.shares(bs) == {}


class TestTransportController:
    def test_link_reservation_and_headroom(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for link in problem.topology.links:
            reserved = controllers.transport.link_reservation(link.key)
            headroom = controllers.transport.link_headroom(link.key)
            assert reserved >= 0.0
            assert headroom == pytest.approx(link.capacity_mbps - reserved)
            assert headroom >= -1e-6


class TestCloudController:
    def test_cu_reservation_within_capacity(self, applied_controllers):
        problem, decision, controllers = applied_controllers
        for cu in problem.topology.compute_units:
            reserved = controllers.cloud.cu_reservation(cu.name)
            assert 0.0 <= reserved <= cu.capacity_cpus + 1e-6
            assert controllers.cloud.cu_headroom(cu.name) == pytest.approx(
                cu.capacity_cpus - reserved
            )
