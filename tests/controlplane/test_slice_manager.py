"""Tests for the slice manager intake queue and descriptors."""

import pytest

from repro.controlplane.slice_manager import SliceDescriptor, SliceManager
from repro.core.slices import MMTC_TEMPLATE, SliceRequest


def request(name, arrival=0):
    return SliceRequest(
        name=name, template=MMTC_TEMPLATE, arrival_epoch=arrival, penalty_factor=2.0
    )


class TestDescriptor:
    def test_from_request_carries_sla(self):
        descriptor = SliceDescriptor.from_request(request("a"))
        assert descriptor.slice_type == "mMTC"
        assert descriptor.sla_mbps == 10.0
        assert descriptor.compute_model["cpus_per_mbps"] == 2.0
        assert descriptor.penalty_factor == 2.0

    def test_as_dict_round_trip(self):
        descriptor = SliceDescriptor.from_request(request("a"))
        data = descriptor.as_dict()
        assert data["slice_name"] == "a"
        assert data["compute_model"]["baseline_cpus"] == 0.0

    def test_from_dict_inverts_as_dict(self):
        descriptor = SliceDescriptor.from_request(request("a"))
        assert SliceDescriptor.from_dict(descriptor.as_dict()) == descriptor

    def test_from_dict_missing_field(self):
        payload = SliceDescriptor.from_request(request("a")).as_dict()
        del payload["duration_epochs"]
        with pytest.raises(ValueError, match="duration_epochs"):
            SliceDescriptor.from_dict(payload)


class TestQueue:
    def test_submit_and_collect(self):
        manager = SliceManager()
        manager.submit(request("a", arrival=0))
        manager.submit(request("b", arrival=2))
        assert manager.pending_count == 2
        due_now = manager.collect_for_epoch(0)
        assert [r.name for r in due_now] == ["a"]
        assert manager.pending_count == 1
        assert manager.collect_for_epoch(1) == []
        due_later = manager.collect_for_epoch(2)
        assert [r.name for r in due_later] == ["b"]

    def test_duplicate_submission_rejected(self):
        manager = SliceManager()
        manager.submit(request("a"))
        with pytest.raises(ValueError):
            manager.submit(request("a"))

    def test_submit_many(self):
        manager = SliceManager()
        descriptors = manager.submit_many([request("a"), request("b")])
        assert len(descriptors) == 2
        assert manager.pending_count == 2

    def test_pending_count_is_a_property(self):
        # Regression guard: pending_count is a stateless getter exposed as a
        # property, not a method.
        assert isinstance(SliceManager.pending_count, property)
        assert SliceManager().pending_count == 0

    def test_pending_requests_snapshot(self):
        manager = SliceManager()
        manager.submit(request("a"))
        manager.submit(request("b", arrival=3))
        assert [r.name for r in manager.pending_requests] == ["a", "b"]
        assert manager.pending_request("b").arrival_epoch == 3
        assert manager.pending_request("ghost") is None

    def test_withdraw(self):
        manager = SliceManager()
        manager.submit(request("a"))
        manager.submit(request("b"))
        withdrawn = manager.withdraw("a")
        assert withdrawn.name == "a"
        assert manager.pending_count == 1
        with pytest.raises(KeyError):
            manager.withdraw("a")
        # A withdrawn name may be re-submitted.
        manager.submit(request("a"))
        assert manager.pending_count == 2
