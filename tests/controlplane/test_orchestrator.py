"""Tests for the end-to-end orchestrator (admission cycle, state, forecasting)."""

import numpy as np
import pytest

from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
from repro.controlplane.state import SliceState
from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.core.slices import EMBB_TEMPLATE, URLLC_TEMPLATE, SliceRequest
from tests.conftest import build_tiny_topology


@pytest.fixture
def orchestrator():
    topology = build_tiny_topology(edge_cpus=16.0, core_cpus=64.0, core_latency_ms=28.0)
    return E2EOrchestrator(
        topology=topology,
        solver=DirectMILPSolver(),
        config=OrchestratorConfig(epochs_per_day=24, samples_per_epoch=4),
    )


def urllc(name, arrival=0, duration=24):
    return SliceRequest(
        name=name, template=URLLC_TEMPLATE, arrival_epoch=arrival, duration_epochs=duration
    )


class TestIdleBehaviour:
    def test_epoch_without_requests_is_a_noop(self, orchestrator):
        decision = orchestrator.run_epoch(0)
        assert decision.allocations == {}
        assert decision.stats.solver == "idle"


class TestAdmissionCycle:
    def test_new_slice_without_history_reserves_full_sla(self, orchestrator):
        orchestrator.submit_request(urllc("u1"))
        decision = orchestrator.run_epoch(0)
        assert decision.is_accepted("u1")
        alloc = decision.allocation("u1")
        for mbps in alloc.reservations_mbps.values():
            assert mbps == pytest.approx(URLLC_TEMPLATE.sla_mbps, rel=1e-2)
        assert orchestrator.registry.record("u1").state is SliceState.ADMITTED

    def test_overbooking_admits_second_slice_after_learning(self, orchestrator):
        # Edge CU has 16 CPUs; a uRLLC slice at full SLA needs 10 (2 BSs x 5),
        # so two fresh slices do not fit.  After observing low load on the
        # first slice, the orchestrator adapts its reservation and admits the
        # second -- the Fig. 8 behaviour.
        orchestrator.submit_request(urllc("u1", arrival=0))
        orchestrator.submit_request(urllc("u2", arrival=2))
        orchestrator.run_epoch(0)
        for epoch in (0, 1):
            for bs in ("bs-0", "bs-1"):
                orchestrator.observe_load("u1", bs, epoch, [5.0, 6.0, 5.5, 6.2])
        decision = orchestrator.run_epoch(2)
        assert decision.is_accepted("u1")
        assert decision.is_accepted("u2")

    def test_without_learning_second_slice_rejected(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0))
        orchestrator.submit_request(urllc("u2", arrival=1))
        orchestrator.run_epoch(0)
        # No monitoring feedback at all: both forecasts stay pessimistic.
        decision = orchestrator.run_epoch(1)
        assert decision.is_accepted("u1")
        assert not decision.is_accepted("u2")
        assert orchestrator.registry.record("u2").state is SliceState.REJECTED

    def test_committed_slice_stays_admitted_until_expiry(self, orchestrator):
        orchestrator.submit_request(urllc("u1", arrival=0, duration=3))
        orchestrator.run_epoch(0)
        assert orchestrator.run_epoch(1).is_accepted("u1")
        assert orchestrator.run_epoch(2).is_accepted("u1")
        # Expired afterwards: epoch 3 has no active slices.
        decision = orchestrator.run_epoch(3)
        assert decision.allocations == {}
        assert orchestrator.registry.record("u1").state is SliceState.EXPIRED

    def test_forecast_override_takes_precedence(self, orchestrator):
        orchestrator.forecast_overrides["u1"] = ForecastInput(
            lambda_hat_mbps=5.0, sigma_hat=0.2
        )
        request = urllc("u1")
        forecast = orchestrator.forecast_for(request)
        assert forecast.lambda_hat_mbps == pytest.approx(5.0)

    def test_controllers_follow_decision(self, orchestrator):
        orchestrator.submit_request(urllc("u1"))
        orchestrator.run_epoch(0)
        shares = orchestrator.controllers.ran.shares("bs-0")
        assert "u1" in shares


class TestForecastingBlockFallbacks:
    def test_fallback_chain_by_history_length(self, orchestrator):
        request = SliceRequest(name="e1", template=EMBB_TEMPLATE)
        block = orchestrator.forecasting
        # No history: pessimistic full-SLA forecast.
        empty = block.forecast_for(request, np.array([]))
        assert empty.lambda_hat_mbps > 0.99 * EMBB_TEMPLATE.sla_mbps * 0.999
        # Short history: naive/double-exponential forecast near the data.
        short = block.forecast_for(request, np.array([10.0, 11.0, 10.5]))
        assert short.lambda_hat_mbps < 20.0
        # Two full seasons: Holt-Winters kicks in.
        seasonal = 10.0 + 5.0 * np.sin(np.arange(48) * 2 * np.pi / 24)
        long = block.forecast_for(request, np.clip(seasonal, 0.1, None))
        assert 0.0 < long.lambda_hat_mbps < 20.0


class _CountingSolver:
    """Wraps DirectMILPSolver and counts how often it is actually invoked."""

    def __init__(self):
        self.inner = DirectMILPSolver()
        self.calls = 0

    def solve(self, problem):
        self.calls += 1
        return self.inner.solve(problem)


class TestEpochReuse:
    """Structure cache + decision reuse across unchanged epochs."""

    def _orchestrator(self, **config_kwargs):
        topology = build_tiny_topology()
        solver = _CountingSolver()
        orchestrator = E2EOrchestrator(
            topology=topology,
            solver=solver,
            config=OrchestratorConfig(samples_per_epoch=4, **config_kwargs),
        )
        request = SliceRequest(name="e1", template=EMBB_TEMPLATE, duration_epochs=24)
        orchestrator.submit_request(request)
        orchestrator.forecast_overrides["e1"] = ForecastInput(
            lambda_hat_mbps=10.0, sigma_hat=0.2
        )
        return orchestrator, solver

    def test_unchanged_epochs_reuse_the_previous_decision(self):
        orchestrator, solver = self._orchestrator()
        orchestrator.run_epoch(0)          # fresh request: solve
        first = orchestrator.run_epoch(1)  # now committed: structure changed, solve
        second = orchestrator.run_epoch(2)  # nothing changed: reuse
        third = orchestrator.run_epoch(3)
        assert solver.calls == 2
        # Reused decisions share the allocations but report zero solver work.
        assert second.allocations is first.allocations
        assert third.allocations is first.allocations
        assert second.objective_value == first.objective_value
        assert second.stats.runtime_s == 0.0
        assert "reused" in second.stats.message
        # The skeleton cache hit on the unchanged epochs.
        assert orchestrator.problem_cache.hits == 2
        assert orchestrator.problem_cache.misses == 2

    def test_forecast_change_invalidates_the_decision_but_not_the_skeleton(self):
        orchestrator, solver = self._orchestrator()
        orchestrator.run_epoch(0)
        orchestrator.run_epoch(1)
        orchestrator.run_epoch(2)
        assert solver.calls == 2
        orchestrator.forecast_overrides["e1"] = ForecastInput(
            lambda_hat_mbps=25.0, sigma_hat=0.2
        )
        orchestrator.run_epoch(3)
        assert solver.calls == 3
        # Only the forecasts changed, so the skeleton was still reused
        # (epochs 2 and 3; epochs 0 and 1 differ structurally).
        assert orchestrator.problem_cache.hits == 2

    def test_reuse_can_be_disabled(self):
        orchestrator, solver = self._orchestrator(reuse_unchanged_decisions=False)
        for epoch in range(4):
            orchestrator.run_epoch(epoch)
        assert solver.calls == 4

    def test_reused_decision_matches_a_fresh_solve(self):
        orchestrator, _solver = self._orchestrator()
        orchestrator.run_epoch(0)
        reference = orchestrator.run_epoch(1)
        reused = orchestrator.run_epoch(2)

        fresh_orchestrator, _ = self._orchestrator()
        fresh_orchestrator.config = OrchestratorConfig(
            samples_per_epoch=4, reuse_unchanged_decisions=False
        )
        fresh_orchestrator.run_epoch(0)
        fresh_orchestrator.run_epoch(1)
        fresh = fresh_orchestrator.run_epoch(2)
        assert reused.objective_value == fresh.objective_value
        assert reused.accepted_tenants == fresh.accepted_tenants
        for name, allocation in fresh.allocations.items():
            assert (
                reused.allocations[name].reservations_mbps
                == allocation.reservations_mbps
            )
        assert reference.accepted_tenants == fresh.accepted_tenants
