"""Tests for the slice lifecycle registry."""

import pytest

from repro.controlplane.state import SliceRegistry, SliceState, SliceStateError
from repro.core.slices import EMBB_TEMPLATE, SliceRequest


def request(name="s", duration=4, arrival=0):
    return SliceRequest(
        name=name, template=EMBB_TEMPLATE, duration_epochs=duration, arrival_epoch=arrival
    )


class TestRegistration:
    def test_register_and_lookup(self):
        registry = SliceRegistry()
        record = registry.register(request())
        assert record.state is SliceState.REQUESTED
        assert "s" in registry
        assert registry.record("s") is record

    def test_duplicate_registration_rejected(self):
        registry = SliceRegistry()
        registry.register(request())
        with pytest.raises(SliceStateError):
            registry.register(request())


class TestTransitions:
    def test_admit_then_expire(self):
        registry = SliceRegistry()
        registry.register(request(duration=2))
        record = registry.mark_admitted("s", epoch=3, compute_unit="edge-cu", reservations_mbps={"bs-0": 10.0})
        assert record.state is SliceState.ADMITTED
        assert record.expires_at() == 5
        assert record.is_active(4)
        assert not record.is_active(5)
        expired = registry.expire_due(5)
        assert [r.name for r in expired] == ["s"]
        assert registry.record("s").state is SliceState.EXPIRED

    def test_readmission_keeps_original_epoch(self):
        registry = SliceRegistry()
        registry.register(request(duration=10))
        registry.mark_admitted("s", epoch=1, compute_unit="edge-cu", reservations_mbps={})
        registry.mark_admitted("s", epoch=5, compute_unit="core-cu", reservations_mbps={})
        assert registry.record("s").admitted_epoch == 1
        assert registry.record("s").compute_unit == "core-cu"

    def test_reject_requested(self):
        registry = SliceRegistry()
        registry.register(request())
        registry.mark_rejected("s")
        assert registry.record("s").state is SliceState.REJECTED

    def test_rejecting_admitted_slice_is_an_error(self):
        registry = SliceRegistry()
        registry.register(request())
        registry.mark_admitted("s", epoch=0, compute_unit="edge-cu", reservations_mbps={})
        with pytest.raises(SliceStateError):
            registry.mark_rejected("s")

    def test_admitting_expired_slice_is_an_error(self):
        registry = SliceRegistry()
        registry.register(request(duration=1))
        registry.mark_admitted("s", epoch=0, compute_unit="edge-cu", reservations_mbps={})
        registry.expire_due(10)
        with pytest.raises(SliceStateError):
            registry.mark_admitted("s", epoch=10, compute_unit="edge-cu", reservations_mbps={})


class TestQueries:
    def test_active_slices_and_counts(self):
        registry = SliceRegistry()
        registry.register(request(name="a", duration=5))
        registry.register(request(name="b", duration=5))
        registry.register(request(name="c"))
        registry.mark_admitted("a", epoch=0, compute_unit="edge-cu", reservations_mbps={})
        registry.mark_admitted("b", epoch=2, compute_unit="edge-cu", reservations_mbps={})
        registry.mark_rejected("c")
        active = {r.name for r in registry.active_slices(4)}
        assert active == {"a", "b"}
        active_late = {r.name for r in registry.active_slices(6)}
        assert active_late == {"b"}
        counts = registry.counts_by_state()
        assert counts[SliceState.ADMITTED] == 2
        assert counts[SliceState.REJECTED] == 1
        assert registry.admitted_names() == ["a", "b"]


class TestRelease:
    def test_release_of_admitted_slice_reaches_terminal_state(self):
        registry = SliceRegistry()
        registry.register(request(name="s", duration=10))
        registry.mark_admitted("s", epoch=0, compute_unit="edge-cu", reservations_mbps={})
        record = registry.release("s")
        assert record.state is SliceState.EXPIRED
        assert registry.active_slices(1) == []
        # The terminal record can be renewed like a natural expiry.
        renewed = registry.renew(request(name="s", arrival=2))
        assert renewed.state is SliceState.REQUESTED
        assert registry.renewal_count("s") == 1

    def test_release_requires_admitted(self):
        registry = SliceRegistry()
        registry.register(request(name="s"))
        with pytest.raises(SliceStateError, match="release"):
            registry.release("s")
        registry.mark_rejected("s")
        with pytest.raises(SliceStateError, match="release"):
            registry.release("s")

    def test_release_of_unknown_name_is_a_key_error(self):
        with pytest.raises(KeyError):
            SliceRegistry().release("ghost")
