"""Tests for the monitoring service (per-epoch peak histories)."""

import numpy as np
import pytest

from repro.controlplane.monitoring import MonitoringService


class TestPeakHistory:
    def test_peak_per_epoch(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0, 4.0, 2.0])
        monitoring.record_samples("s", "bs-0", 1, [3.0, 3.5])
        history = monitoring.peak_history("s", base_station="bs-0")
        assert np.allclose(history, [4.0, 3.5])

    def test_peak_across_base_stations(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        monitoring.record_samples("s", "bs-1", 0, [7.0])
        monitoring.record_samples("s", "bs-0", 1, [2.0])
        monitoring.record_samples("s", "bs-1", 1, [1.0])
        assert np.allclose(monitoring.peak_history("s"), [7.0, 2.0])

    def test_unknown_slice_has_empty_history(self):
        assert MonitoringService().peak_history("ghost").size == 0

    def test_num_observed_epochs(self):
        monitoring = MonitoringService()
        for epoch in range(3):
            monitoring.record_samples("s", "bs-0", epoch, [1.0])
        assert monitoring.num_observed_epochs("s") == 3

    def test_observed_base_stations(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-1", 0, [1.0])
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        monitoring.record_samples("other", "bs-9", 0, [1.0])
        assert monitoring.observed_base_stations("s") == ["bs-0", "bs-1"]

    def test_mean_load(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0, 3.0])
        monitoring.record_samples("s", "bs-1", 0, [5.0, 7.0])
        assert monitoring.mean_load("s") == pytest.approx(4.0)
        assert monitoring.mean_load("ghost") == 0.0
