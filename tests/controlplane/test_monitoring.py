"""Tests for the monitoring service (per-epoch peak histories)."""

import numpy as np
import pytest

from repro.controlplane.monitoring import MonitoringService
from repro.controlplane.tsdb import TimeSeriesStore


class TestPeakHistory:
    def test_peak_per_epoch(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0, 4.0, 2.0])
        monitoring.record_samples("s", "bs-0", 1, [3.0, 3.5])
        history = monitoring.peak_history("s", base_station="bs-0")
        assert np.allclose(history, [4.0, 3.5])

    def test_peak_across_base_stations(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        monitoring.record_samples("s", "bs-1", 0, [7.0])
        monitoring.record_samples("s", "bs-0", 1, [2.0])
        monitoring.record_samples("s", "bs-1", 1, [1.0])
        assert np.allclose(monitoring.peak_history("s"), [7.0, 2.0])

    def test_unknown_slice_has_empty_history(self):
        assert MonitoringService().peak_history("ghost").size == 0

    def test_num_observed_epochs(self):
        monitoring = MonitoringService()
        for epoch in range(3):
            monitoring.record_samples("s", "bs-0", epoch, [1.0])
        assert monitoring.num_observed_epochs("s") == 3

    def test_observed_base_stations(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-1", 0, [1.0])
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        monitoring.record_samples("other", "bs-9", 0, [1.0])
        assert monitoring.observed_base_stations("s") == ["bs-0", "bs-1"]

    def test_mean_load(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0, 3.0])
        monitoring.record_samples("s", "bs-1", 0, [5.0, 7.0])
        assert monitoring.mean_load("s") == pytest.approx(4.0)
        assert monitoring.mean_load("ghost") == 0.0


class TestPeakCache:
    """The merged peak history is cached and invalidated by writes."""

    def test_cached_history_is_returned_between_writes(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0, 2.0])
        first = monitoring.peak_history("s")
        second = monitoring.peak_history("s")
        assert second is first  # served from the cache, no rebuild

    def test_write_invalidates_the_cache(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        stale = monitoring.peak_history("s")
        monitoring.record_samples("s", "bs-0", 1, [5.0])
        fresh = monitoring.peak_history("s")
        assert fresh is not stale
        assert fresh.tolist() == [1.0, 5.0]

    def test_new_base_station_invalidates_the_cache(self):
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [1.0])
        monitoring.peak_history("s")
        monitoring.record_samples("s", "bs-1", 0, [9.0])
        assert monitoring.peak_history("s").tolist() == [9.0]

    def test_direct_store_writes_are_detected(self):
        """Even bypassing record_samples, the version stamps catch writes."""
        monitoring = MonitoringService()
        monitoring.record_samples("s", "bs-0", 0, [2.0])
        monitoring.peak_history("s")
        monitoring.store.write_many(
            "slice_load_mbps", 1, [7.0], tags={"slice": "s", "bs": "bs-0"}
        )
        assert monitoring.peak_history("s").tolist() == [2.0, 7.0]

    def test_cache_is_per_slice(self):
        monitoring = MonitoringService()
        monitoring.record_samples("a", "bs-0", 0, [1.0])
        monitoring.record_samples("b", "bs-0", 0, [2.0])
        cached_a = monitoring.peak_history("a")
        monitoring.record_samples("b", "bs-0", 1, [3.0])
        assert monitoring.peak_history("a") is cached_a

    def test_direct_store_write_to_a_new_base_station_is_detected(self):
        """A brand-new series written behind the service's back (shared
        store) must invalidate the cached station list, not be ignored."""
        store = TimeSeriesStore()
        monitoring = MonitoringService(store=store)
        monitoring.record_samples("s", "bs-0", 0, [2.0])
        assert monitoring.peak_history("s").tolist() == [2.0]
        store.write_many("slice_load_mbps", 0, [9.0], tags={"slice": "s", "bs": "bs-1"})
        assert monitoring.observed_base_stations("s") == ["bs-0", "bs-1"]
        assert monitoring.peak_history("s").tolist() == [9.0]


class TestRetention:
    def test_peak_history_covers_the_retained_window_only(self):
        monitoring = MonitoringService(retention_epochs=4)
        for epoch in range(10):
            monitoring.record_samples("s", "bs-0", epoch, [float(epoch)])
        history = monitoring.peak_history("s", base_station="bs-0")
        assert history.tolist() == [6.0, 7.0, 8.0, 9.0]
        assert monitoring.num_observed_epochs("s") == 4

    def test_explicit_store_and_retention_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            MonitoringService(store=TimeSeriesStore(), retention_epochs=3)


class TestForecasterHandoff:
    """Monitoring -> Forecasting: the peak history must feed every
    fallback tier of the forecasting block with usable inputs."""

    def _record_diurnal_history(self, monitoring, slice_name, num_epochs, peak=40.0):
        for epoch in range(num_epochs):
            level = peak * (0.5 + 0.5 * np.sin(2 * np.pi * epoch / 24.0) ** 2)
            monitoring.record_samples(
                slice_name, "bs-0", epoch, [level * 0.9, level, level * 0.95]
            )

    def test_history_drives_holt_winters_once_two_seasons_exist(self):
        from repro.controlplane.orchestrator import ForecastingBlock
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest
        from repro.forecasting.holt_winters import HoltWintersForecaster

        monitoring = MonitoringService()
        self._record_diurnal_history(monitoring, "s", num_epochs=49)
        block = ForecastingBlock(primary=HoltWintersForecaster(season_length=24))
        request = SliceRequest(name="s", template=EMBB_TEMPLATE)
        history = monitoring.peak_history("s")
        assert history.size == 49
        assert block.primary.can_forecast(history)
        forecast = block.forecast_for(request, history)
        assert 0.0 < forecast.lambda_hat_mbps <= request.sla_mbps
        assert 0.0 < forecast.sigma_hat <= 1.0

    def test_short_history_falls_back_without_full_sla_pessimism(self):
        from repro.controlplane.orchestrator import ForecastingBlock
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest
        from repro.forecasting.holt_winters import HoltWintersForecaster

        monitoring = MonitoringService()
        self._record_diurnal_history(monitoring, "s", num_epochs=5)
        block = ForecastingBlock(primary=HoltWintersForecaster(season_length=24))
        request = SliceRequest(name="s", template=EMBB_TEMPLATE)
        history = monitoring.peak_history("s")
        assert not block.primary.can_forecast(history)
        forecast = block.forecast_for(request, history)
        # Fallback tiers engage: the forecast tracks the observed ~40 Mb/s
        # peaks instead of the pessimistic full-SLA reservation.
        assert forecast.lambda_hat_mbps < request.sla_mbps * 0.999

    def test_retention_bounds_what_the_forecaster_sees(self):
        monitoring = MonitoringService(retention_epochs=24)
        self._record_diurnal_history(monitoring, "s", num_epochs=100)
        history = monitoring.peak_history("s")
        assert history.size == 24

    def test_retention_below_two_seasons_flips_holt_winters_to_double_exponential(self):
        """Satellite regression: pruning below ``2 * season_length`` must
        cleanly drop the forecasting block from Holt-Winters to double
        exponential smoothing -- same API, no pessimistic full-SLA reset."""
        from repro.controlplane.orchestrator import ForecastingBlock
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest
        from repro.forecasting.holt_winters import HoltWintersForecaster

        season = 24
        block = ForecastingBlock(primary=HoltWintersForecaster(season_length=season))
        request = SliceRequest(name="s", template=EMBB_TEMPLATE)

        unbounded = MonitoringService()
        pruned = MonitoringService(retention_epochs=2 * season - 1)
        for monitoring in (unbounded, pruned):
            self._record_diurnal_history(monitoring, "s", num_epochs=100)

        long_history = unbounded.peak_history("s")
        short_history = pruned.peak_history("s")
        assert block.primary.can_forecast(long_history)
        assert not block.primary.can_forecast(short_history)
        assert block.fallback.can_forecast(short_history)

        forecast = block.forecast_for(request, short_history)
        # The fallback still tracks the observed ~40 Mb/s peaks: retention
        # must never knock a learnt slice back to full-SLA pessimism.
        assert forecast.lambda_hat_mbps < request.sla_mbps * 0.999
        assert 0.0 < forecast.sigma_hat <= 1.0

    def test_retention_flip_leaves_override_scenarios_untouched(self):
        """Forecast overrides bypass the monitoring path entirely, so
        retention-driven fallback flips must not change override-driven
        (Fig. 5 / Fig. 6 oracle) decisions."""
        from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
        from repro.core.forecast_inputs import ForecastInput
        from repro.core.milp_solver import DirectMILPSolver
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest
        from tests.conftest import build_tiny_topology

        def run(retention):
            orchestrator = E2EOrchestrator(
                topology=build_tiny_topology(),
                solver=DirectMILPSolver(),
                config=OrchestratorConfig(epochs_per_day=24, samples_per_epoch=3),
                monitoring=MonitoringService(retention_epochs=retention),
            )
            orchestrator.forecast_overrides["s"] = ForecastInput(
                lambda_hat_mbps=12.0, sigma_hat=0.3
            )
            orchestrator.submit_request(
                SliceRequest(name="s", template=EMBB_TEMPLATE, duration_epochs=80)
            )
            decisions = []
            for epoch in range(60):
                decision = orchestrator.run_epoch(epoch)
                for bs in ("bs-0", "bs-1"):
                    orchestrator.observe_load("s", bs, epoch, [10.0, 12.0, 11.0])
                decisions.append(decision)
            return decisions

        pruned = run(retention=12)       # well below 2 * season_length
        unbounded = run(retention=None)
        for lhs, rhs in zip(pruned, unbounded):
            assert lhs.objective_value == rhs.objective_value
            assert sorted(lhs.accepted_tenants) == sorted(rhs.accepted_tenants)
            for name, allocation in lhs.allocations.items():
                assert allocation.reservations_mbps == rhs.allocations[name].reservations_mbps

    def test_orchestrator_observe_load_feeds_the_handoff(self):
        from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
        from repro.core.milp_solver import DirectMILPSolver
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest
        from tests.conftest import build_tiny_topology

        orchestrator = E2EOrchestrator(
            topology=build_tiny_topology(),
            solver=DirectMILPSolver(),
            config=OrchestratorConfig(epochs_per_day=4),
        )
        request = SliceRequest(name="s", template=EMBB_TEMPLATE)
        for epoch in range(9):
            orchestrator.observe_load("s", "bs-0", epoch, [20.0, 21.0, 19.5])
        forecast = orchestrator.forecast_for(request)
        assert forecast.lambda_hat_mbps == pytest.approx(21.0, rel=0.25)
        assert 0.0 < forecast.sigma_hat <= 1.0
