"""Tests for the in-memory time-series store."""

import numpy as np
import pytest

from repro.controlplane.tsdb import TimeSeriesStore


class TestWriteAndRead:
    def test_round_trip(self):
        store = TimeSeriesStore()
        store.write("load", 0, 10.0, tags={"slice": "a"})
        store.write("load", 1, 12.0, tags={"slice": "a"})
        assert np.allclose(store.values("load", tags={"slice": "a"}), [10.0, 12.0])

    def test_tags_separate_series(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0, tags={"slice": "a"})
        store.write("load", 0, 2.0, tags={"slice": "b"})
        assert store.values("load", tags={"slice": "a"}).tolist() == [1.0]
        assert len(store) == 2

    def test_missing_series_is_empty(self):
        assert TimeSeriesStore().values("nope").size == 0

    def test_out_of_order_epoch_rejected(self):
        store = TimeSeriesStore()
        store.write("load", 5, 1.0)
        with pytest.raises(ValueError):
            store.write("load", 4, 1.0)

    def test_write_many(self):
        store = TimeSeriesStore()
        store.write_many("load", 0, [1.0, 2.0, 3.0])
        assert store.values("load").size == 3

    def test_epoch_range_filter(self):
        store = TimeSeriesStore()
        for epoch in range(5):
            store.write("load", epoch, float(epoch))
        assert store.values("load", start_epoch=2).tolist() == [2.0, 3.0, 4.0]
        assert store.values("load", end_epoch=1).tolist() == [0.0, 1.0]


class TestAggregation:
    def test_per_epoch_max(self):
        store = TimeSeriesStore()
        store.write_many("load", 0, [1.0, 5.0, 3.0])
        store.write_many("load", 1, [2.0, 2.0])
        assert store.per_epoch_aggregate("load", aggregate="max") == {0: 5.0, 1: 2.0}

    def test_per_epoch_mean_and_sum(self):
        store = TimeSeriesStore()
        store.write_many("load", 0, [1.0, 3.0])
        assert store.per_epoch_aggregate("load", aggregate="mean")[0] == pytest.approx(2.0)
        assert store.per_epoch_aggregate("load", aggregate="sum")[0] == pytest.approx(4.0)

    def test_unknown_aggregate_rejected(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0)
        with pytest.raises(ValueError):
            store.per_epoch_aggregate("load", aggregate="median")

    def test_series_names_and_clear(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0, tags={"slice": "a"})
        assert store.series_names() == [("load", {"slice": "a"})]
        store.clear()
        assert len(store) == 0


class TestQueryWindows:
    def test_window_bounds_are_inclusive(self):
        store = TimeSeriesStore()
        for epoch in range(6):
            store.write("load", epoch, float(epoch))
        assert store.values("load", start_epoch=1, end_epoch=3).tolist() == [1.0, 2.0, 3.0]

    def test_window_with_repeated_epochs_keeps_all_samples(self):
        store = TimeSeriesStore()
        store.write_many("load", 0, [1.0, 2.0])
        store.write_many("load", 1, [3.0, 4.0])
        store.write_many("load", 2, [5.0])
        assert store.values("load", start_epoch=1, end_epoch=1).tolist() == [3.0, 4.0]

    def test_empty_window_returns_empty(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0)
        assert store.values("load", start_epoch=5).size == 0
        assert store.values("load", end_epoch=-1).size == 0

    def test_window_beyond_data_clamps(self):
        store = TimeSeriesStore()
        store.write("load", 3, 7.0)
        assert store.values("load", start_epoch=0, end_epoch=100).tolist() == [7.0]


class TestIncrementalPeaks:
    def test_peak_series_matches_aggregate(self):
        store = TimeSeriesStore()
        store.write_many("load", 0, [1.0, 5.0, 3.0])
        store.write_many("load", 2, [2.0, 4.0])
        epochs, peaks = store.peak_series("load")
        assert epochs.tolist() == [0, 2]
        assert peaks.tolist() == [5.0, 4.0]
        assert store.per_epoch_aggregate("load", aggregate="max") == {0: 5.0, 2: 4.0}

    def test_peak_updates_in_place_for_repeated_epoch_writes(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0)
        store.write("load", 0, 9.0)
        store.write("load", 0, 4.0)
        _, peaks = store.peak_series("load")
        assert peaks.tolist() == [9.0]

    def test_peak_series_of_missing_series_is_empty(self):
        epochs, peaks = TimeSeriesStore().peak_series("nope")
        assert epochs.size == 0 and peaks.size == 0

    def test_retention_prunes_the_peak_track(self):
        store = TimeSeriesStore(retention_epochs=2)
        for epoch in range(6):
            store.write("load", epoch, float(epoch))
        epochs, peaks = store.peak_series("load")
        assert epochs.tolist() == [4, 5]
        assert peaks.tolist() == [4.0, 5.0]

    def test_long_rolling_window_stays_consistent(self):
        """Ring-buffer compaction across many prunes never loses samples."""
        store = TimeSeriesStore(retention_epochs=5)
        for epoch in range(500):
            store.write_many("load", epoch, [float(epoch), float(epoch) / 2])
        assert store.values("load").tolist() == [
            v for e in range(495, 500) for v in (float(e), e / 2)
        ]
        epochs, peaks = store.peak_series("load")
        assert epochs.tolist() == list(range(495, 500))
        assert peaks.tolist() == [float(e) for e in range(495, 500)]


class TestVersions:
    def test_version_starts_at_zero_for_missing_series(self):
        assert TimeSeriesStore().series_version("nope") == 0

    def test_version_bumps_on_writes(self):
        store = TimeSeriesStore()
        store.write("load", 0, 1.0)
        v1 = store.series_version("load")
        store.write("load", 1, 1.0)
        assert store.series_version("load") > v1

    def test_version_bumps_on_retention_prune(self):
        store = TimeSeriesStore(retention_epochs=1)
        store.write("load", 0, 1.0)
        v1 = store.series_version("load")
        store.write("load", 5, 1.0)  # write + prune of epoch 0
        assert store.series_version("load") >= v1 + 2


class TestRetention:
    def test_old_epochs_are_dropped(self):
        store = TimeSeriesStore(retention_epochs=3)
        for epoch in range(10):
            store.write("load", epoch, float(epoch))
        assert store.values("load").tolist() == [7.0, 8.0, 9.0]

    def test_retention_is_per_series(self):
        store = TimeSeriesStore(retention_epochs=2)
        for epoch in range(5):
            store.write("load", epoch, float(epoch), tags={"slice": "a"})
        store.write("load", 0, 99.0, tags={"slice": "b"})
        # Series "b" only saw epoch 0; its own window keeps it alive even
        # though series "a" has advanced to epoch 4.
        assert store.values("load", tags={"slice": "b"}).tolist() == [99.0]
        assert store.values("load", tags={"slice": "a"}).tolist() == [3.0, 4.0]

    def test_retention_keeps_every_sample_of_retained_epochs(self):
        store = TimeSeriesStore(retention_epochs=2)
        store.write_many("load", 0, [1.0, 2.0])
        store.write_many("load", 1, [3.0, 4.0])
        store.write_many("load", 2, [5.0, 6.0])
        assert store.values("load").tolist() == [3.0, 4.0, 5.0, 6.0]
        assert store.per_epoch_aggregate("load", aggregate="max") == {1: 4.0, 2: 6.0}

    def test_unbounded_by_default(self):
        store = TimeSeriesStore()
        for epoch in range(50):
            store.write("load", epoch, 1.0)
        assert store.values("load").size == 50

    @pytest.mark.parametrize("bad", [0, -3])
    def test_non_positive_retention_rejected(self, bad):
        with pytest.raises(ValueError, match="retention_epochs"):
            TimeSeriesStore(retention_epochs=bad)
