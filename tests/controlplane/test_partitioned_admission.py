"""Footprint-partitioned batch admission (PR 7 tentpole, upper half).

The orchestrator may split one epoch's joint admission problem into
topology-disjoint footprints -- tenant groups no *contendable* capacity row
couples -- and solve the sub-problems independently.  The split is exact
(every cross-group row has room for the worst case on both sides), so these
tests hold the partitioned decision to *bit-identity* with the joint solve,
not mere near-equality.
"""

from __future__ import annotations

import pytest

from repro.controlplane.orchestrator import E2EOrchestrator, OrchestratorConfig
from repro.core.milp_solver import DirectMILPSolver
from repro.core.slices import EMBB_TEMPLATE, URLLC_TEMPLATE, make_requests
from repro.scenarios import decision_fingerprint
from tests.conftest import build_tiny_topology


def roomy_topology():
    """Capacities so generous no capacity row can ever bind.

    Worst-case load of the fixture tenants is far below every radio, link
    and CPU capacity, so no row is contendable and each tenant is its own
    footprint.
    """
    return build_tiny_topology(
        num_base_stations=2,
        bs_capacity_mhz=10_000.0,
        link_capacity_mbps=1e6,
        edge_cpus=1e5,
        core_cpus=1e6,
    )


def fixture_requests():
    # All uRLLC: the latency bound forces edge anchoring, so the roomy
    # instance has a *unique* optimum and the joint-vs-partitioned claim can
    # be bit-identity rather than objective equality.  (With eMBB tenants,
    # edge and core anchoring tie and HiGHS breaks the tie differently on
    # the smaller sub-problem's column order.)
    return make_requests(URLLC_TEMPLATE, 5, duration_epochs=24)


def orchestrator(topology, partition: bool, workers: int | None = None):
    return E2EOrchestrator(
        topology=topology,
        solver=DirectMILPSolver(),
        config=OrchestratorConfig(
            partition_admission=partition, partition_workers=workers
        ),
    )


def run_first_epoch(partition: bool, workers: int | None = None):
    orch = orchestrator(roomy_topology(), partition, workers)
    for request in fixture_requests():
        orch.submit_request(request)
    return orch, orch.run_epoch(0)


class TestExactness:
    def test_partitioned_decision_is_bit_identical_to_joint(self):
        _, joint = run_first_epoch(partition=False)
        _, split = run_first_epoch(partition=True)
        assert decision_fingerprint(split) == decision_fingerprint(joint)
        assert "partitioned into 5 disjoint footprints" in split.stats.message
        assert "partitioned" not in joint.stats.message

    def test_partitioned_decision_is_worker_count_invariant(self):
        fingerprints = {
            decision_fingerprint(run_first_epoch(partition=True, workers=workers)[1])
            for workers in (None, 1, 2, 4)
        }
        assert len(fingerprints) == 1

    def test_merged_stats_aggregate_the_sub_solves(self):
        _, joint = run_first_epoch(partition=False)
        _, split = run_first_epoch(partition=True)
        assert split.stats.solver == joint.stats.solver
        assert split.stats.optimal
        assert split.stats.tier == "primary"
        assert not split.stats.time_truncated
        assert split.objective_value == pytest.approx(joint.objective_value, abs=1e-9)


class TestPartitioningGuards:
    def test_saturated_instance_stays_joint(self):
        # Default tiny-topology capacities: the radio rows are contendable
        # (SLA worst cases overlap), so everything lands in one group and
        # the solve must not claim a partition.
        orch = orchestrator(build_tiny_topology(), partition=True)
        for request in fixture_requests():
            orch.submit_request(request)
        decision = orch.run_epoch(0)
        assert "partitioned" not in decision.stats.message

    def test_deficit_epochs_are_never_partitioned(self):
        # Once slices are committed, the orchestrator enables the per-domain
        # deficit variables (allow_deficit_for_committed default): those
        # columns are global to a domain, so sub-solves would buy the same
        # slack twice.  The epoch must fall back to the joint solve.
        orch = orchestrator(roomy_topology(), partition=True)
        for request in fixture_requests():
            orch.submit_request(request)
        first = orch.run_epoch(0)
        assert "partitioned" in first.stats.message
        assert first.num_accepted == 5
        second = orch.run_epoch(1)
        assert orch.last_problem.options.allow_deficit
        assert "partitioned" not in second.stats.message

    def test_single_tenant_batch_stays_joint(self):
        orch = orchestrator(roomy_topology(), partition=True)
        orch.submit_request(make_requests(EMBB_TEMPLATE, 1, duration_epochs=5)[0])
        decision = orch.run_epoch(0)
        assert "partitioned" not in decision.stats.message

    def test_partition_config_invalidates_decision_reuse(self):
        # Flipping the partition flag between epochs must invalidate the
        # unchanged-decision reuse cache: the reused stats would otherwise
        # claim a solve shape that never ran.
        orch = orchestrator(roomy_topology(), partition=False)
        for request in fixture_requests():
            orch.submit_request(request)
        orch.run_epoch(0)
        object.__setattr__(orch.config, "partition_admission", True)
        # Epoch 1 has committed slices, hence deficit options and no
        # partitioning -- but the reuse key must still change.
        decision = orch.run_epoch(1)
        assert "reused unchanged decision" not in decision.stats.message
