"""Tests for the three operator presets and the Section 5 testbed topology."""

import pytest

from repro.topology.operators import (
    ITALIAN_PROFILE,
    ROMANIAN_PROFILE,
    SWISS_PROFILE,
    italian_topology,
    romanian_topology,
    swiss_topology,
    testbed_topology as build_testbed_topology,
)
from repro.topology.paths import compute_path_sets


class TestProfiles:
    def test_base_station_counts_match_paper(self):
        assert ROMANIAN_PROFILE.num_base_stations == 198
        assert SWISS_PROFILE.num_base_stations == 197
        assert ITALIAN_PROFILE.num_base_stations == 200

    def test_italian_clusters_have_more_spectrum(self):
        assert ITALIAN_PROFILE.bs_capacity_mhz_range[0] >= 80.0
        assert ROMANIAN_PROFILE.bs_capacity_mhz_range == (20.0, 20.0)

    def test_swiss_has_smaller_aggregation_capacity(self):
        assert SWISS_PROFILE.hub_capacity_mbps[1] < ROMANIAN_PROFILE.hub_capacity_mbps[0]


class TestReducedTopologies:
    @pytest.mark.parametrize(
        "factory", [romanian_topology, swiss_topology, italian_topology]
    )
    def test_reduced_generation(self, factory):
        topo = factory(num_base_stations=10, seed=1)
        assert len(topo.base_station_names) == 10
        topo.validate()

    def test_path_redundancy_ordering(self):
        # The Romanian network is multi-homed, the Italian one mostly
        # single-homed: path redundancy must reflect that (6.6 vs 1.6 in the
        # paper; the ordering is what matters here).
        romanian = compute_path_sets(romanian_topology(num_base_stations=20, seed=2), k=8)
        italian = compute_path_sets(italian_topology(num_base_stations=20, seed=2), k=8)
        assert romanian.mean_paths_per_pair() > italian.mean_paths_per_pair()

    def test_edge_compute_follows_20_per_bs_rule(self):
        topo = romanian_topology(num_base_stations=10, seed=1)
        assert topo.compute_unit("edge-cu").capacity_cpus == pytest.approx(200.0)


class TestTestbedTopology:
    def test_matches_table2(self):
        topo = build_testbed_topology()
        assert len(topo.base_station_names) == 2
        assert topo.compute_unit("edge-cu").capacity_cpus == 16.0
        assert topo.compute_unit("core-cu").capacity_cpus == 64.0
        assert topo.compute_unit("core-cu").access_latency_ms == pytest.approx(28.0)
        for link in topo.links:
            assert link.capacity_mbps == pytest.approx(1000.0)

    def test_urllc_can_only_reach_edge(self):
        # The emulated wide-area backhaul in front of the core CU violates the
        # 5 ms uRLLC latency budget; the edge CU does not.
        topo = build_testbed_topology()
        paths = compute_path_sets(topo, k=2)
        edge_delay = paths.paths("bs-0", "edge-cu")[0].delay_ms
        core_delay = paths.paths("bs-0", "core-cu")[0].delay_ms
        assert edge_delay < 5.0 < core_delay
        # ...but mMTC/eMBB (30 ms tolerance) can still be anchored at the core.
        assert core_delay < 30.0
