"""Tests for the store-and-forward delay model (footnote 11)."""

import pytest

from repro.topology.delay import FRAME_BITS, PER_HOP_PROCESSING_US, link_delay_us, path_delay_us
from repro.topology.elements import LinkTechnology, TransportLink


def make_link(capacity_mbps=1000.0, length_km=1.0, technology=LinkTechnology.FIBER):
    return TransportLink(
        endpoint_a="a",
        endpoint_b="b",
        capacity_mbps=capacity_mbps,
        length_km=length_km,
        technology=technology,
    )


class TestLinkDelay:
    def test_components_add_up(self):
        link = make_link(capacity_mbps=1000.0, length_km=2.0)
        expected = FRAME_BITS / 1000.0 + 2.0 * 4.0 + PER_HOP_PROCESSING_US
        assert link_delay_us(link) == pytest.approx(expected)

    def test_wireless_has_higher_propagation(self):
        fiber = make_link(technology=LinkTechnology.FIBER, length_km=10.0)
        wireless = make_link(technology=LinkTechnology.WIRELESS, length_km=10.0)
        assert link_delay_us(wireless) > link_delay_us(fiber)

    def test_faster_link_lower_transmission_delay(self):
        slow = make_link(capacity_mbps=2_000.0, length_km=0.0)
        fast = make_link(capacity_mbps=200_000.0, length_km=0.0)
        assert link_delay_us(fast) < link_delay_us(slow)

    def test_paper_example_2gbps(self):
        # A 12 000-bit frame on a 2 Gb/s link takes 6 us to serialise.
        link = make_link(capacity_mbps=2000.0, length_km=0.0)
        assert link_delay_us(link) == pytest.approx(6.0 + PER_HOP_PROCESSING_US)


class TestPathDelay:
    def test_sums_links(self):
        links = [make_link(), make_link()]
        assert path_delay_us(links) == pytest.approx(2 * link_delay_us(links[0]))

    def test_extra_latency_in_ms(self):
        links = [make_link()]
        base = path_delay_us(links)
        assert path_delay_us(links, extra_latency_ms=20.0) == pytest.approx(base + 20_000.0)

    def test_empty_path_only_extra_latency(self):
        assert path_delay_us([], extra_latency_ms=5.0) == pytest.approx(5000.0)
