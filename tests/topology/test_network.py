"""Tests for the NetworkTopology container."""

import pytest

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    TransportLink,
    TransportSwitch,
)
from repro.topology.network import NetworkTopology
from tests.conftest import build_tiny_topology


class TestConstruction:
    def test_duplicate_node_name_rejected(self):
        topo = NetworkTopology()
        topo.add_base_station(BaseStation(name="x", capacity_mhz=20.0))
        with pytest.raises(ValueError):
            topo.add_switch(TransportSwitch(name="x"))

    def test_link_requires_known_endpoints(self):
        topo = NetworkTopology()
        topo.add_switch(TransportSwitch(name="sw"))
        with pytest.raises(KeyError):
            topo.add_link(TransportLink(endpoint_a="sw", endpoint_b="ghost", capacity_mbps=1.0))

    def test_duplicate_link_rejected(self):
        topo = NetworkTopology()
        topo.add_switch(TransportSwitch(name="a"))
        topo.add_switch(TransportSwitch(name="b"))
        topo.add_link(TransportLink(endpoint_a="a", endpoint_b="b", capacity_mbps=1.0))
        with pytest.raises(ValueError):
            topo.add_link(TransportLink(endpoint_a="b", endpoint_b="a", capacity_mbps=2.0))


class TestLookup:
    def test_link_lookup_is_order_insensitive(self):
        topo = build_tiny_topology()
        assert topo.link("sw", "bs-0").capacity_mbps == topo.link("bs-0", "sw").capacity_mbps

    def test_links_between_sequence(self):
        topo = build_tiny_topology()
        links = list(topo.links_between(["bs-0", "sw", "edge-cu"]))
        assert len(links) == 2

    def test_names(self):
        topo = build_tiny_topology(num_base_stations=3)
        assert topo.base_station_names == ["bs-0", "bs-1", "bs-2"]
        assert set(topo.compute_unit_names) == {"edge-cu", "core-cu"}


class TestGraphAndCapacities:
    def test_graph_has_all_nodes_and_edges(self):
        topo = build_tiny_topology()
        graph = topo.graph()
        assert graph.number_of_nodes() == 2 + 1 + 2
        assert graph.number_of_edges() == len(topo.links)

    def test_capacities_snapshot(self):
        topo = build_tiny_topology(bs_capacity_mhz=20.0, edge_cpus=16.0)
        caps = topo.capacities()
        assert caps.radio_mhz["bs-0"] == 20.0
        assert caps.compute_cpus["edge-cu"] == 16.0
        assert len(caps.transport_mbps) == len(topo.links)

    def test_summary_counts(self):
        topo = build_tiny_topology(num_base_stations=4)
        summary = topo.summary()
        assert summary["num_base_stations"] == 4
        assert summary["num_compute_units"] == 2
        assert summary["num_links"] == len(topo.links)


class TestValidation:
    def test_validate_accepts_connected(self):
        build_tiny_topology().validate()

    def test_validate_rejects_missing_compute(self):
        topo = NetworkTopology()
        topo.add_base_station(BaseStation(name="bs", capacity_mhz=20.0))
        with pytest.raises(ValueError):
            topo.validate()

    def test_validate_rejects_disconnected_bs(self):
        topo = NetworkTopology()
        topo.add_base_station(BaseStation(name="bs", capacity_mhz=20.0))
        topo.add_compute_unit(ComputeUnit(name="cu", capacity_cpus=4.0))
        with pytest.raises(ValueError, match="cannot reach"):
            topo.validate()
