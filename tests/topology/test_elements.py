"""Tests for data-plane elements (base stations, links, compute units)."""

import pytest

from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    DomainCapacities,
    LinkTechnology,
    TransportLink,
)


class TestBaseStation:
    def test_capacity_mbps_ideal_lte(self):
        bs = BaseStation(name="bs", capacity_mhz=20.0)
        # 20 MHz at 7.5 Mb/s per MHz reproduces the paper's 150 Mb/s cell.
        assert bs.capacity_mbps == pytest.approx(150.0)

    def test_capacity_prbs(self):
        bs = BaseStation(name="bs", capacity_mhz=20.0)
        assert bs.capacity_prbs == pytest.approx(100.0)

    def test_mhz_for_bitrate_matches_eta(self):
        bs = BaseStation(name="bs", capacity_mhz=20.0)
        # eta_b = 20 / 150 MHz per Mb/s.
        assert bs.mhz_for_bitrate(150.0) == pytest.approx(20.0)
        assert bs.mhz_for_bitrate(1.0) == pytest.approx(20.0 / 150.0)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BaseStation(name="bs", capacity_mhz=0.0)

    def test_rejects_negative_bitrate(self):
        bs = BaseStation(name="bs", capacity_mhz=20.0)
        with pytest.raises(ValueError):
            bs.mhz_for_bitrate(-1.0)


class TestComputeUnit:
    def test_defaults(self):
        cu = ComputeUnit(name="edge", capacity_cpus=16.0)
        assert cu.kind is ComputeUnitKind.EDGE
        assert cu.access_latency_ms == 0.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ComputeUnit(name="edge", capacity_cpus=0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ComputeUnit(name="core", capacity_cpus=10.0, access_latency_ms=-1.0)


class TestTransportLink:
    def test_key_is_canonical(self):
        link = TransportLink(endpoint_a="b", endpoint_b="a", capacity_mbps=100.0)
        assert link.key == ("a", "b")

    def test_other_endpoint(self):
        link = TransportLink(endpoint_a="a", endpoint_b="b", capacity_mbps=100.0)
        assert link.other_endpoint("a") == "b"
        assert link.other_endpoint("b") == "a"
        with pytest.raises(KeyError):
            link.other_endpoint("c")

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            TransportLink(endpoint_a="a", endpoint_b="a", capacity_mbps=100.0)

    def test_overhead_below_one_rejected(self):
        with pytest.raises(ValueError):
            TransportLink(endpoint_a="a", endpoint_b="b", capacity_mbps=100.0, overhead=0.9)

    def test_propagation_delay_by_technology(self):
        assert LinkTechnology.FIBER.propagation_us_per_km == 4.0
        assert LinkTechnology.COPPER.propagation_us_per_km == 4.0
        assert LinkTechnology.WIRELESS.propagation_us_per_km == 5.0


class TestDomainCapacities:
    def test_copy_is_independent(self):
        caps = DomainCapacities(radio_mhz={"bs": 20.0})
        clone = caps.copy()
        clone.radio_mhz["bs"] = 40.0
        assert caps.radio_mhz["bs"] == 20.0
