"""Tests for candidate-path enumeration (the P_{b,c} sets)."""

import pytest

from repro.topology.elements import TransportLink, TransportSwitch
from repro.topology.paths import compute_path_sets, k_shortest_paths
from tests.conftest import build_tiny_topology


class TestKShortestPaths:
    def test_single_path_star(self):
        topo = build_tiny_topology()
        paths = k_shortest_paths(topo, "bs-0", "edge-cu", k=3)
        assert len(paths) == 1
        assert paths[0].nodes == ("bs-0", "sw", "edge-cu")
        assert paths[0].hop_count == 2

    def test_k_must_be_positive(self):
        topo = build_tiny_topology()
        with pytest.raises(ValueError):
            k_shortest_paths(topo, "bs-0", "edge-cu", k=0)

    def test_unknown_weight_rejected(self):
        topo = build_tiny_topology()
        with pytest.raises(ValueError):
            k_shortest_paths(topo, "bs-0", "edge-cu", k=1, weight="hops-and-delay")

    def test_multiple_paths_with_redundant_switch(self):
        topo = build_tiny_topology()
        topo.add_switch(TransportSwitch(name="sw2"))
        topo.add_link(TransportLink(endpoint_a="bs-0", endpoint_b="sw2", capacity_mbps=500.0))
        topo.add_link(TransportLink(endpoint_a="sw2", endpoint_b="edge-cu", capacity_mbps=500.0))
        paths = k_shortest_paths(topo, "bs-0", "edge-cu", k=4)
        assert len(paths) == 2
        # Paths are ordered by increasing delay.
        assert paths[0].delay_us <= paths[1].delay_us

    def test_bottleneck_capacity(self):
        topo = build_tiny_topology(link_capacity_mbps=1000.0)
        topo.add_switch(TransportSwitch(name="sw2"))
        topo.add_link(TransportLink(endpoint_a="bs-0", endpoint_b="sw2", capacity_mbps=200.0))
        topo.add_link(TransportLink(endpoint_a="sw2", endpoint_b="edge-cu", capacity_mbps=800.0))
        paths = k_shortest_paths(topo, "bs-0", "edge-cu", k=4)
        slower = [p for p in paths if "sw2" in p.nodes][0]
        assert slower.capacity_mbps == pytest.approx(200.0)

    def test_core_cu_latency_added(self):
        topo = build_tiny_topology(core_latency_ms=20.0)
        edge = k_shortest_paths(topo, "bs-0", "edge-cu", k=1)[0]
        core = k_shortest_paths(topo, "bs-0", "core-cu", k=1)[0]
        assert core.delay_ms == pytest.approx(edge.delay_ms + 20.0, rel=0.05)


class TestPathSet:
    def test_all_pairs_present(self, tiny_topology):
        path_set = compute_path_sets(tiny_topology, k=2)
        assert set(path_set.base_stations()) == {"bs-0", "bs-1"}
        assert set(path_set.compute_units()) == {"edge-cu", "core-cu"}
        assert len(path_set.paths("bs-0", "edge-cu")) == 1

    def test_len_counts_paths(self, tiny_topology):
        path_set = compute_path_sets(tiny_topology, k=2)
        assert len(path_set) == 4  # 2 BSs x 2 CUs x 1 path

    def test_mean_paths_per_pair(self, tiny_topology):
        path_set = compute_path_sets(tiny_topology, k=2)
        assert path_set.mean_paths_per_pair() == pytest.approx(1.0)

    def test_paths_from_and_to(self, tiny_topology):
        path_set = compute_path_sets(tiny_topology, k=2)
        assert len(path_set.paths_from("bs-0")) == 2
        assert len(path_set.paths_to("edge-cu")) == 2

    def test_uses_link(self, tiny_topology):
        path_set = compute_path_sets(tiny_topology, k=2)
        path = path_set.paths("bs-0", "edge-cu")[0]
        assert path.uses_link(("sw", "edge-cu"))
        assert path.uses_link(("edge-cu", "sw"))
        assert not path.uses_link(("sw", "core-cu"))
