"""Tests for the synthetic operator-topology generator."""

import math

import pytest

from repro.topology.elements import LinkTechnology
from repro.topology.generators import OperatorProfile, generate_operator_topology
from repro.topology.operators import ROMANIAN_PROFILE


def small_profile(**overrides):
    base = {
        "name": "test-op",
        "num_base_stations": 12,
        "num_aggregation_switches": 3,
        "num_hubs": 1,
        "bs_degree_choices": (1, 2),
        "bs_degree_weights": (0.5, 0.5),
        "bs_capacity_mhz_range": (20.0, 20.0),
        "city_radius_km": 5.0,
        "access_technology_mix": ((LinkTechnology.FIBER, 1.0),),
        "access_capacity_mbps": {LinkTechnology.FIBER: (1000.0, 2000.0)},
        "aggregation_capacity_mbps": (5000.0, 5000.0),
        "aggregation_technology": LinkTechnology.FIBER,
        "hub_capacity_mbps": (10000.0, 10000.0),
        "hub_technology": LinkTechnology.FIBER,
    }
    base.update(overrides)
    return OperatorProfile(**base)


class TestProfileValidation:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            small_profile(bs_degree_weights=(0.5, 0.6))

    def test_technology_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            small_profile(
                access_technology_mix=((LinkTechnology.FIBER, 0.5),),
            )

    def test_positive_counts_required(self):
        with pytest.raises(ValueError):
            small_profile(num_base_stations=0)


class TestGeneration:
    def test_counts_match_profile(self):
        topo = generate_operator_topology(small_profile(), seed=1)
        assert len(topo.base_station_names) == 12
        assert len(topo.compute_unit_names) == 2
        topo.validate()

    def test_deterministic_given_seed(self):
        a = generate_operator_topology(small_profile(), seed=5)
        b = generate_operator_topology(small_profile(), seed=5)
        assert a.summary() == b.summary()

    def test_different_seed_differs(self):
        a = generate_operator_topology(small_profile(), seed=5)
        b = generate_operator_topology(small_profile(), seed=6)
        assert a.summary() != b.summary()

    def test_edge_compute_scaled_with_bs_count(self):
        topo = generate_operator_topology(small_profile(), seed=1)
        edge = topo.compute_unit("edge-cu")
        core = topo.compute_unit("core-cu")
        assert edge.capacity_cpus == pytest.approx(20.0 * 12)
        assert core.capacity_cpus == pytest.approx(edge.capacity_cpus * 5.0)
        assert core.access_latency_ms == pytest.approx(20.0)

    def test_every_bs_within_city_radius(self):
        profile = small_profile(city_radius_km=5.0)
        topo = generate_operator_topology(profile, seed=2)
        for bs in topo.base_stations:
            assert math.hypot(*bs.position_km) <= 5.0 + 1e-6


class TestScaledProfile:
    def test_scaled_preserves_bs_per_agg_capacity_ratio(self):
        scaled = ROMANIAN_PROFILE.scaled(20)
        original_per_agg = (
            ROMANIAN_PROFILE.num_base_stations / ROMANIAN_PROFILE.num_aggregation_switches
        )
        scaled_per_agg = scaled.num_base_stations / scaled.num_aggregation_switches
        original_ratio = original_per_agg / ROMANIAN_PROFILE.hub_capacity_mbps[0]
        scaled_ratio = scaled_per_agg / scaled.hub_capacity_mbps[0]
        assert scaled_ratio == pytest.approx(original_ratio, rel=1e-6)

    def test_scaled_rejects_zero(self):
        with pytest.raises(ValueError):
            ROMANIAN_PROFILE.scaled(0)

    def test_scaled_keeps_radio_capacity(self):
        scaled = ROMANIAN_PROFILE.scaled(20)
        assert scaled.bs_capacity_mhz_range == ROMANIAN_PROFILE.bs_capacity_mhz_range
