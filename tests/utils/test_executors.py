"""Failure semantics of the pooled run executors (PR 7 regressions).

The pre-fix ``ProcessPoolRunExecutor.map`` had two bugs this file pins:

* an exception raised by the ``on_result`` consumer *masked* an earlier (or
  later) run failure, so the sweep driver reported the bookkeeping error
  instead of the root cause;
* neither failure cancelled the futures that had not started yet, so a
  failed sweep kept burning workers on doomed runs.

The contract under test (module docstring of ``repro.utils.executors``):
results come back in item order, a run failure always wins over a consumer
failure, and either failure cancels pending work.
"""

from __future__ import annotations

import time

import pytest

from repro.utils.executors import (
    ProcessPoolRunExecutor,
    SerialExecutor,
    ThreadPoolRunExecutor,
    default_executor,
    resolve_executor,
)

POOLED = [ThreadPoolRunExecutor, ProcessPoolRunExecutor]


class RunError(RuntimeError):
    pass


class ConsumerError(RuntimeError):
    pass


# Module-level work functions so the process pool can pickle them.
def _identity(item):
    return item


def _fail_on_negative(item):
    if item < 0:
        raise RunError(f"run failed on {item}")
    return item


def _fail_fast_then_sleep(item):
    # Item 0 fails immediately; the rest are slow, so the drain sees the
    # failure while most of the queue is still pending.
    if item == 0:
        raise RunError("doomed sweep")
    time.sleep(0.05)
    return item


def _slow_success_fast_failure(item):
    # Failures complete (and are observed) before any success does.
    if item < 0:
        raise RunError(f"run failed on {item}")
    time.sleep(0.05)
    return item


def _fast_success_slow_failure(item):
    # The first event the drain sees is a success; the run failure is
    # already in flight (so cancellation cannot suppress it) but lands
    # only after the consumer has broken.  The sleeps are generous because
    # pool workers spin up lazily: the failing run must have *started*
    # before the success completes, or cancellation would (correctly)
    # drop it.
    if item < 0:
        time.sleep(1.0)
        raise RunError(f"run failed on {item}")
    time.sleep(0.4)
    return item


def _sleep_inverse(item):
    # Later items finish *earlier*: completion order is the reverse of item
    # order, which is exactly what the in-order return must hide.
    time.sleep(0.02 * (4 - item))
    return item


class TestOrdering:
    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_results_in_item_order_despite_completion_order(self, executor_cls):
        results = executor_cls(max_workers=4).map(_sleep_inverse, [0, 1, 2, 3])
        assert results == [0, 1, 2, 3]

    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_on_result_sees_every_result(self, executor_cls):
        seen = []
        results = executor_cls(max_workers=2).map(
            _identity, [1, 2, 3], on_result=seen.append
        )
        assert results == [1, 2, 3]
        assert sorted(seen) == [1, 2, 3]

    def test_serial_matches_pool(self):
        items = list(range(6))
        assert SerialExecutor().map(_identity, items) == ThreadPoolRunExecutor(
            max_workers=3
        ).map(_identity, items)


class TestFailurePrecedence:
    """A run failure carries the root cause; the consumer is bookkeeping."""

    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_run_failure_first_wins_over_later_consumer_failure(self, executor_cls):
        # Ordering 1: the run failure is observed first, then a success is
        # forwarded to a consumer that breaks.  The run failure must win.
        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        with pytest.raises(RunError):
            executor_cls(max_workers=2).map(
                _slow_success_fast_failure, [-1, 1, 2], on_result=broken_consumer
            )

    def test_late_run_failure_wins_over_earlier_consumer_failure(self):
        # Ordering 2: the consumer breaks on the first success while the
        # failing run is still executing.  The run failure discovered later
        # must still win -- this is the masking bug the fix pins down.  An
        # event makes the ordering deterministic: the success only returns
        # once the failing run is in flight, so cancellation cannot
        # (correctly) drop the failure before it happens.
        import threading

        failure_started = threading.Event()

        def work(item):
            if item < 0:
                failure_started.set()
                time.sleep(0.1)
                raise RunError(f"run failed on {item}")
            assert failure_started.wait(timeout=5.0)
            return item

        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        with pytest.raises(RunError):
            ThreadPoolRunExecutor(max_workers=2).map(
                work, [1, -1], on_result=broken_consumer
            )

    @pytest.mark.slow
    def test_late_run_failure_wins_in_process_pool(self):
        # Same ordering through the process pool, where closures cannot
        # carry an event: generous sleeps stand in for the rendezvous.
        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        with pytest.raises(RunError):
            ProcessPoolRunExecutor(max_workers=2).map(
                _fast_success_slow_failure, [1, -1], on_result=broken_consumer
            )

    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_consumer_failure_propagates_when_runs_succeed(self, executor_cls):
        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        with pytest.raises(ConsumerError):
            executor_cls(max_workers=2).map(
                _identity, [1, 2, 3], on_result=broken_consumer
            )

    def test_run_failure_wins_in_serial_executor_too(self):
        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        # Serially the first event is the consumer failure on item 1; the
        # generator stops there, so the consumer error is the honest outcome.
        with pytest.raises(ConsumerError):
            SerialExecutor().map(
                _fail_on_negative, [1, -1], on_result=broken_consumer
            )

    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_completed_results_reach_consumer_before_run_failure(self, executor_cls):
        seen = []
        with pytest.raises(RunError):
            executor_cls(max_workers=1).map(
                _fail_on_negative, [1, 2, -1], on_result=seen.append
            )
        # With one worker the successes complete before the failing item
        # runs: an aborted sweep persists all finished work.  (as_completed
        # yields already-finished futures in unspecified order, so only the
        # membership is contractual, not the forwarding order.)
        assert sorted(seen) == [1, 2]


class TestCancellation:
    def test_pending_futures_are_cancelled_on_run_failure(self):
        # One worker, a fast failure, then a queue of slow items: after the
        # failure is observed, the still-pending futures must be cancelled,
        # so only the item(s) already grabbed by the worker can still run.
        started = time.perf_counter()
        with pytest.raises(RunError):
            ThreadPoolRunExecutor(max_workers=1).map(
                _fail_fast_then_sleep, list(range(12))
            )
        elapsed = time.perf_counter() - started
        # Running all 11 slow items would take >= 0.55 s; cancellation keeps
        # it to the failure plus at most a couple of in-flight items.
        assert elapsed < 0.45, f"pending work was not cancelled ({elapsed:.2f}s)"

    def test_pending_futures_are_cancelled_on_consumer_failure(self):
        def broken_consumer(result):
            raise ConsumerError("persistence broke")

        started = time.perf_counter()
        with pytest.raises(ConsumerError):
            ThreadPoolRunExecutor(max_workers=1).map(
                _fail_fast_then_sleep, [99] + list(range(1, 12)),
                on_result=broken_consumer,
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 0.45, f"pending work was not cancelled ({elapsed:.2f}s)"


class TestResolution:
    def test_default_executor_serial_for_single_worker(self):
        assert isinstance(default_executor(None), SerialExecutor)
        assert isinstance(default_executor(1), SerialExecutor)
        pooled = default_executor(3)
        assert isinstance(pooled, ProcessPoolRunExecutor)
        assert pooled.max_workers == 3

    def test_resolve_executor_prefers_explicit_object(self):
        explicit = ThreadPoolRunExecutor(max_workers=2)
        assert resolve_executor(explicit, workers=8) is explicit
        assert isinstance(resolve_executor(None, workers=None), SerialExecutor)

    @pytest.mark.parametrize("executor_cls", POOLED)
    def test_rejects_non_positive_workers(self, executor_cls):
        with pytest.raises(ValueError):
            executor_cls(max_workers=0)
