"""Tests for the argument-validation helpers."""

import pytest

from repro.utils.validation import (
    ensure_choice,
    ensure_in_range,
    ensure_non_negative,
    ensure_non_negative_int,
    ensure_ordered_pair,
    ensure_positive,
    ensure_positive_int,
    ensure_probability,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(value, "x")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.1, 0.0, 1.0, "x")


class TestEnsureProbability:
    def test_accepts_half(self):
        assert ensure_probability(0.5, "p") == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            ensure_probability(2.0, "p")


class TestUniformErrorContract:
    """Every helper raises ValueError whose message names the argument,
    states the admissible values and quotes what was received."""

    @pytest.mark.parametrize(
        "call",
        [
            lambda: ensure_positive(-1.0, "alpha"),
            lambda: ensure_non_negative(-1.0, "alpha"),
            lambda: ensure_in_range(-1.0, 0.0, 1.0, "alpha"),
            lambda: ensure_probability(-1.0, "alpha"),
            lambda: ensure_positive_int(-1, "alpha"),
            lambda: ensure_non_negative_int(-1, "alpha"),
        ],
        ids=[
            "positive",
            "non_negative",
            "in_range",
            "probability",
            "positive_int",
            "non_negative_int",
        ],
    )
    def test_message_names_argument_and_value(self, call):
        with pytest.raises(ValueError) as excinfo:
            call()
        message = str(excinfo.value)
        assert "alpha" in message
        assert "-1" in message

    def test_in_range_message_states_the_bounds(self):
        with pytest.raises(ValueError, match=r"x must be in \[0\.0, 1\.0\], got 1\.5"):
            ensure_in_range(1.5, 0.0, 1.0, "x")

    @pytest.mark.parametrize("value", [None, "3", [], float("nan")])
    def test_non_numeric_inputs_raise_value_error_not_type_error(self, value):
        for helper in (ensure_positive, ensure_non_negative, ensure_probability):
            with pytest.raises(ValueError, match="x must be"):
                helper(value, "x")
        with pytest.raises(ValueError, match="x must be"):
            ensure_in_range(value, 0.0, 1.0, "x")

    def test_booleans_are_not_numbers(self):
        with pytest.raises(ValueError, match="real number"):
            ensure_positive(True, "flag")

    def test_returns_are_floats(self):
        assert isinstance(ensure_in_range(1, 0, 2, "x"), float)
        assert isinstance(ensure_positive(2, "x"), float)


class TestEnsureInts:
    def test_accepts_integral_floats(self):
        assert ensure_positive_int(3.0, "n") == 3
        assert ensure_non_negative_int(0.0, "n") == 0

    @pytest.mark.parametrize("value", [0, -2, 2.5, "3", None, True])
    def test_positive_int_rejections(self, value):
        with pytest.raises(ValueError, match="n must be a positive integer"):
            ensure_positive_int(value, "n")

    @pytest.mark.parametrize("value", [-1, 2.5, "3", None])
    def test_non_negative_int_rejections(self, value):
        with pytest.raises(ValueError, match="n must be a non-negative integer"):
            ensure_non_negative_int(value, "n")


class TestEnsureChoice:
    def test_accepts_member(self):
        assert ensure_choice("oracle", ("oracle", "online"), "mode") == "oracle"

    def test_rejects_non_member_with_choices_in_message(self):
        with pytest.raises(ValueError, match=r"mode must be one of \('oracle', 'online'\), got 'psychic'"):
            ensure_choice("psychic", ("oracle", "online"), "mode")


class TestEnsureOrderedPair:
    def test_accepts_lists_and_tuples(self):
        assert ensure_ordered_pair([1, 2], "r") == (1.0, 2.0)
        assert ensure_ordered_pair((0.5, 0.5), "r") == (0.5, 0.5)

    @pytest.mark.parametrize("value", [(2, 1), (1,), (1, 2, 3), "ab", 5, (0.0, float("nan"))])
    def test_rejections(self, value):
        with pytest.raises(ValueError, match="r"):
            ensure_ordered_pair(value, "r")

    def test_bounds_enforced(self):
        with pytest.raises(ValueError, match=r"lie within"):
            ensure_ordered_pair((0.5, 1.5), "r", low=0.0, high=1.0)


class TestScenarioConstructorMessages:
    """The scenario layer surfaces the same uniform errors."""

    def test_scenario_rejects_bad_epoch_counts_with_value(self):
        from repro.simulation.scenario import homogeneous_scenario
        from repro.core.slices import EMBB_TEMPLATE

        with pytest.raises(ValueError, match="num_tenants must be a positive integer, got 0"):
            homogeneous_scenario(
                "swiss",
                EMBB_TEMPLATE,
                num_tenants=0,
                mean_load_fraction=0.5,
                num_base_stations=2,
            )

    def test_scenario_rejects_out_of_range_alpha_with_value(self):
        from repro.simulation.scenario import homogeneous_scenario
        from repro.core.slices import EMBB_TEMPLATE

        with pytest.raises(ValueError, match=r"mean_load_fraction must be in \[0\.0, 1\.0\], got 1\.2"):
            homogeneous_scenario(
                "swiss",
                EMBB_TEMPLATE,
                num_tenants=2,
                mean_load_fraction=1.2,
                num_base_stations=2,
            )

    def test_scenario_rejects_bad_forecast_mode_with_choices(self):
        from repro.simulation.scenario import testbed_scenario
        from dataclasses import replace

        scenario = testbed_scenario(num_epochs=2)
        with pytest.raises(ValueError, match="forecast_mode must be one of"):
            replace(scenario, forecast_mode="psychic")

    def test_duplicate_workload_names_are_listed(self):
        from dataclasses import replace
        from repro.simulation.scenario import testbed_scenario

        scenario = testbed_scenario(num_epochs=2)
        duplicated = scenario.workloads + (scenario.workloads[0],)
        with pytest.raises(ValueError, match=r"duplicates \['uRLLC1'\]"):
            replace(scenario, workloads=duplicated)
