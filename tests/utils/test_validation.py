"""Tests for the argument-validation helpers."""

import pytest

from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            ensure_positive(value, "x")


class TestEnsureNonNegative:
    def test_accepts_zero(self):
        assert ensure_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ensure_non_negative(-0.1, "x")


class TestEnsureInRange:
    def test_accepts_bounds(self):
        assert ensure_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert ensure_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            ensure_in_range(1.1, 0.0, 1.0, "x")


class TestEnsureProbability:
    def test_accepts_half(self):
        assert ensure_probability(0.5, "p") == 0.5

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            ensure_probability(2.0, "p")
