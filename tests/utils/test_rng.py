"""Tests for the seeded random-number helpers."""

import numpy as np
import pytest

from repro.utils.rng import choice_without_replacement, derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).normal(size=10)
        b = make_rng(42).normal(size=10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).normal(size=10)
        b = make_rng(2).normal(size=10)
        assert not np.allclose(a, b)

    def test_default_seed_is_reproducible(self):
        assert np.allclose(make_rng(None).normal(size=5), make_rng(None).normal(size=5))


class TestSpawnRngs:
    def test_spawned_streams_are_independent(self):
        rngs = spawn_rngs(7, 3)
        draws = [rng.normal(size=8) for rng in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_is_reproducible(self):
        first = [rng.normal(size=4) for rng in spawn_rngs(7, 2)]
        second = [rng.normal(size=4) for rng in spawn_rngs(7, 2)]
        for a, b in zip(first, second):
            assert np.allclose(a, b)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, "tenant-a", 5) == derive_seed(3, "tenant-a", 5)

    def test_labels_matter(self):
        assert derive_seed(3, "tenant-a") != derive_seed(3, "tenant-b")

    def test_base_seed_matters(self):
        assert derive_seed(3, "x") != derive_seed(4, "x")


class TestChoiceWithoutReplacement:
    def test_preserves_order_and_uniqueness(self):
        rng = make_rng(0)
        items = list(range(20))
        chosen = choice_without_replacement(rng, items, 5)
        assert len(chosen) == 5
        assert chosen == sorted(chosen)
        assert len(set(chosen)) == 5

    def test_too_many_requested(self):
        with pytest.raises(ValueError):
            choice_without_replacement(make_rng(0), [1, 2], 3)
