"""Tests for the statistics helpers (CDFs, standard errors, gains)."""

import numpy as np
import pytest

from repro.utils.stats import (
    EmpiricalCDF,
    mean_and_stderr,
    relative_gain,
    running_mean,
    standard_error_below,
)


class TestEmpiricalCDF:
    def test_from_samples_sorts(self):
        cdf = EmpiricalCDF.from_samples([3.0, 1.0, 2.0])
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_samples([])

    def test_evaluate_monotone(self):
        cdf = EmpiricalCDF.from_samples(range(10))
        values = [cdf.evaluate(x) for x in np.linspace(-1, 10, 25)]
        assert values == sorted(values)
        assert cdf.evaluate(-1) == 0.0
        assert cdf.evaluate(9) == 1.0

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF.from_samples([1, 2, 3, 4])
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 4
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_as_arrays_shape(self):
        cdf = EmpiricalCDF.from_samples([5, 6, 7])
        xs, ps = cdf.as_arrays()
        assert xs.shape == ps.shape == (3,)
        assert ps[-1] == pytest.approx(1.0)

    def test_summary_keys(self):
        summary = EmpiricalCDF.from_samples([1, 2, 3]).summary()
        assert set(summary) == {"min", "p25", "median", "p75", "max", "mean"}
        assert summary["min"] == 1 and summary["max"] == 3


class TestMeanAndStderr:
    def test_single_sample_has_infinite_stderr(self):
        mean, stderr = mean_and_stderr([4.0])
        assert mean == 4.0
        assert stderr == float("inf")

    def test_constant_samples_zero_stderr(self):
        mean, stderr = mean_and_stderr([2.0] * 10)
        assert mean == 2.0
        assert stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_and_stderr([])

    def test_matches_numpy(self):
        data = [1.0, 2.0, 3.0, 4.0]
        mean, stderr = mean_and_stderr(data)
        assert mean == pytest.approx(np.mean(data))
        assert stderr == pytest.approx(np.std(data, ddof=1) / np.sqrt(len(data)))


class TestRelativeGain:
    def test_positive_gain(self):
        assert relative_gain(6.0, 3.0) == pytest.approx(100.0)

    def test_no_gain(self):
        assert relative_gain(3.0, 3.0) == 0.0

    def test_zero_baseline_zero_value(self):
        assert relative_gain(0.0, 0.0) == 0.0

    def test_zero_baseline_nonzero_value_rejected(self):
        with pytest.raises(ZeroDivisionError):
            relative_gain(1.0, 0.0)


class TestRunningMeanAndConvergence:
    def test_running_mean_values(self):
        assert np.allclose(running_mean([1, 2, 3]), [1.0, 1.5, 2.0])

    def test_running_mean_empty(self):
        assert running_mean([]).size == 0

    def test_standard_error_below_converged(self):
        assert standard_error_below([10.0] * 20, 0.02)

    def test_standard_error_below_not_converged(self):
        noisy = [0.0, 100.0] * 3
        assert not standard_error_below(noisy, 0.02)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            standard_error_below([1.0, 2.0], 0.0)
