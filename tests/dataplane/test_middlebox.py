"""Tests for the rate-control middlebox (Section 2.1.3)."""

import pytest

from repro.dataplane.middlebox import RateControlMiddlebox


def make_middlebox(reservation=30.0, sla=50.0, buffer_mb=50.0):
    return RateControlMiddlebox(
        slice_name="s", sla_mbps=sla, reservation_mbps=reservation, buffer_capacity_mb=buffer_mb
    )


class TestRegimes:
    def test_below_reservation_forwarded_transparently(self):
        report = make_middlebox().process_sample(20.0)
        assert report.forwarded_mbps == pytest.approx(20.0)
        assert not report.violated
        assert report.sla_violation_mbps == 0.0

    def test_between_reservation_and_sla_is_shaped(self):
        report = make_middlebox(reservation=30.0, sla=50.0).process_sample(40.0)
        assert report.forwarded_mbps == pytest.approx(30.0)
        # The 10 Mb/s above the reservation is buffered and, once the proxy
        # buffer fills within the 5-minute sample, dropped -- either way it is
        # an SLA violation caused by overbooking.
        assert report.sla_violation_mbps == pytest.approx(10.0)
        assert report.violated
        assert report.dropped_beyond_sla_mbps == 0.0

    def test_short_burst_fits_in_the_buffer(self):
        report = make_middlebox(reservation=30.0, sla=50.0).process_sample(
            40.0, sample_seconds=5.0
        )
        assert report.buffered_mbps == pytest.approx(10.0)
        assert report.dropped_overflow_mbps == 0.0

    def test_beyond_sla_is_dropped_without_violation(self):
        report = make_middlebox(reservation=50.0, sla=50.0).process_sample(70.0)
        assert report.dropped_beyond_sla_mbps == pytest.approx(20.0)
        assert report.forwarded_mbps == pytest.approx(50.0)
        assert not report.violated  # exceeding the SLA is the tenant's problem

    def test_violation_fraction(self):
        report = make_middlebox(reservation=30.0, sla=50.0).process_sample(40.0)
        assert report.violation_fraction == pytest.approx(10.0 / 40.0)

    def test_conservation_of_traffic(self):
        report = make_middlebox(reservation=30.0, sla=50.0).process_sample(60.0)
        total = (
            report.forwarded_mbps
            + report.buffered_mbps
            + report.dropped_beyond_sla_mbps
            + report.dropped_overflow_mbps
        )
        assert total == pytest.approx(report.offered_mbps)


class TestBuffering:
    def test_backlog_drains_when_load_drops(self):
        middlebox = make_middlebox(reservation=30.0, sla=50.0)
        middlebox.process_sample(45.0, sample_seconds=10.0)
        assert middlebox.buffer_occupancy_mb > 0.0
        middlebox.process_sample(5.0, sample_seconds=10.0)
        assert middlebox.buffer_occupancy_mb == pytest.approx(0.0, abs=1e-9)

    def test_overflow_dropped_when_buffer_full(self):
        middlebox = make_middlebox(reservation=10.0, sla=50.0, buffer_mb=1.0)
        report = middlebox.process_sample(50.0, sample_seconds=100.0)
        assert report.dropped_overflow_mbps > 0.0
        assert middlebox.buffer_occupancy_mb == pytest.approx(1.0)

    def test_reset_flushes_buffer(self):
        middlebox = make_middlebox(reservation=10.0, sla=50.0)
        middlebox.process_sample(40.0)
        middlebox.reset()
        assert middlebox.buffer_occupancy_mb == 0.0


class TestConfiguration:
    def test_update_reservation(self):
        middlebox = make_middlebox(reservation=10.0)
        middlebox.update_reservation(45.0)
        report = middlebox.process_sample(40.0)
        assert not report.violated

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_middlebox(sla=0.0)
        with pytest.raises(ValueError):
            make_middlebox().process_sample(-1.0)
        with pytest.raises(ValueError):
            make_middlebox().update_reservation(-5.0)
