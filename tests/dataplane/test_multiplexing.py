"""Tests for work-conserving statistical multiplexing of admitted slices."""

import numpy as np
import pytest

from repro.core.milp_solver import DirectMILPSolver
from repro.dataplane.multiplexing import SliceMultiplexer


@pytest.fixture
def admitted(embb_problem):
    decision = DirectMILPSolver().solve(embb_problem)
    allocations = {n: a for n, a in decision.allocations.items() if a.accepted}
    assert len(allocations) == 6
    return decision, allocations


def uniform_samples(allocations, topology, mbps, num_samples=4):
    return {
        (name, bs): np.full(num_samples, float(mbps))
        for name in allocations
        for bs in topology.base_station_names
    }


class TestNoOverload:
    def test_all_traffic_served_when_capacity_sufficient(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        # 6 slices x 20 Mb/s = 120 Mb/s per BS < 150 Mb/s capacity.
        offered = uniform_samples(allocations, embb_problem.topology, 20.0)
        result = mux.unserved_traffic(offered)
        assert result.total_unserved() == pytest.approx(0.0, abs=1e-9)
        assert result.overloaded_resources == ()

    def test_empty_offered(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        result = mux.unserved_traffic({})
        assert result.unserved_mbps == {}


class TestOverload:
    def test_radio_saturation_produces_unserved_traffic(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        # 6 slices x 40 Mb/s = 240 Mb/s per BS > 150 Mb/s radio capacity.
        offered = uniform_samples(allocations, embb_problem.topology, 40.0)
        result = mux.unserved_traffic(offered)
        assert result.total_unserved() > 0.0
        assert any(r.startswith("radio:") for r in result.overloaded_resources)

    def test_unserved_never_exceeds_offered(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        offered = uniform_samples(allocations, embb_problem.topology, 50.0)
        result = mux.unserved_traffic(offered)
        for key, unserved in result.unserved_mbps.items():
            assert np.all(unserved <= offered[key] + 1e-9)
            assert np.all(unserved >= 0.0)

    def test_total_served_fits_capacity_after_clamping(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        offered = uniform_samples(allocations, embb_problem.topology, 45.0, num_samples=1)
        result = mux.unserved_traffic(offered)
        for bs in embb_problem.topology.base_station_names:
            served = sum(
                float(offered[(name, bs)][0] - result.unserved_mbps[(name, bs)][0])
                for name in allocations
            )
            capacity = embb_problem.topology.base_station(bs).capacity_mbps
            assert served <= capacity + 1e-6

    def test_slices_within_reservation_are_protected(self, embb_problem, admitted):
        _decision, allocations = admitted
        mux = SliceMultiplexer(embb_problem.topology, allocations)
        names = sorted(allocations)
        protected, offenders = names[0], names[1:]
        offered = {}
        for bs in embb_problem.topology.base_station_names:
            reservation = allocations[protected].reservations_mbps[bs]
            offered[(protected, bs)] = np.array([min(reservation, 5.0)])
            for name in offenders:
                offered[(name, bs)] = np.array([50.0])
        result = mux.unserved_traffic(offered)
        for bs in embb_problem.topology.base_station_names:
            assert result.unserved_mbps[(protected, bs)][0] == pytest.approx(0.0, abs=1e-9)
