"""Tests for the ETSI-style network-service construction."""

import pytest

from repro.core.milp_solver import DirectMILPSolver
from repro.dataplane.network_service import FunctionKind, build_network_service


@pytest.fixture
def accepted_allocation(mixed_problem):
    decision = DirectMILPSolver().solve(mixed_problem)
    for name, alloc in decision.allocations.items():
        if alloc.accepted and alloc.request.template.name == "mMTC":
            return alloc
    pytest.skip("no accepted mMTC slice in fixture decision")


class TestBuildNetworkService:
    def test_rejected_slice_raises(self, mixed_problem):
        from repro.core.solution import TenantAllocation

        rejected = TenantAllocation(
            request=mixed_problem.requests[0], accepted=False, compute_unit=None
        )
        with pytest.raises(ValueError):
            build_network_service(mixed_problem.requests[0], rejected)

    def test_cpu_budget_split_across_vnfs(self, accepted_allocation):
        service = build_network_service(accepted_allocation.request, accepted_allocation)
        assert service.total_cpu_cores == pytest.approx(accepted_allocation.reserved_cpus)
        kinds = {f.kind for f in service.virtual_functions}
        assert kinds == {
            FunctionKind.VNF_CORE,
            FunctionKind.VNF_MIDDLEBOX,
            FunctionKind.VERTICAL_SERVICE,
        }

    def test_one_radio_pnf_per_base_station(self, accepted_allocation):
        service = build_network_service(accepted_allocation.request, accepted_allocation)
        radio_pnfs = [f for f in service.functions if f.kind is FunctionKind.PNF_RADIO]
        assert len(radio_pnfs) == len(accepted_allocation.paths)
        assert all(f.cpu_cores == 0.0 for f in radio_pnfs)

    def test_virtual_functions_placed_on_anchor_cu(self, accepted_allocation):
        service = build_network_service(accepted_allocation.request, accepted_allocation)
        for function in service.virtual_functions:
            assert function.location == accepted_allocation.compute_unit

    def test_paths_recorded(self, accepted_allocation):
        service = build_network_service(accepted_allocation.request, accepted_allocation)
        assert set(service.paths_by_base_station) == set(accepted_allocation.paths)

    def test_function_lookup(self, accepted_allocation):
        service = build_network_service(accepted_allocation.request, accepted_allocation)
        name = f"{service.slice_name}:vertical-service"
        assert service.function(name).kind is FunctionKind.VERTICAL_SERVICE
        with pytest.raises(KeyError):
            service.function("missing")
