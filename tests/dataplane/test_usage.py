"""Tests for per-domain usage accounting (Fig. 8 quantities)."""

import pytest

from repro.core.milp_solver import DirectMILPSolver
from repro.dataplane.usage import UsageAccountant


@pytest.fixture
def decision_and_accountant(mixed_problem):
    decision = DirectMILPSolver().solve(mixed_problem)
    return decision, UsageAccountant(mixed_problem, decision)


def uniform_served(problem, decision, mbps):
    served = {}
    for name, alloc in decision.allocations.items():
        if not alloc.accepted:
            continue
        for bs in alloc.paths:
            served[(name, bs)] = mbps
    return served


class TestRadioUsage:
    def test_usage_below_reservation_when_load_low(self, mixed_problem, decision_and_accountant):
        decision, accountant = decision_and_accountant
        served = uniform_served(mixed_problem, decision, 1.0)
        usage = accountant.radio_usage(served)
        for bs_usage in usage.values():
            assert bs_usage.used <= bs_usage.reserved + 1e-9
            assert 0 <= bs_usage.used_fraction <= 1.0

    def test_capacity_matches_topology(self, mixed_problem, decision_and_accountant):
        decision, accountant = decision_and_accountant
        usage = accountant.radio_usage({})
        for bs_name, bs_usage in usage.items():
            assert bs_usage.capacity == mixed_problem.topology.base_station(bs_name).capacity_mhz


class TestTransportUsage:
    def test_reservations_aggregate_per_link(self, mixed_problem, decision_and_accountant):
        decision, accountant = decision_and_accountant
        served = uniform_served(mixed_problem, decision, 2.0)
        usage = accountant.transport_usage(served)
        reservations = decision.transport_reservations_mbps(mixed_problem)
        for key, link_usage in usage.items():
            assert link_usage.reserved == pytest.approx(sum(reservations[key].values()))


class TestComputeUsage:
    def test_used_cpu_follows_served_traffic(self, mixed_problem, decision_and_accountant):
        decision, accountant = decision_and_accountant
        served = uniform_served(mixed_problem, decision, 5.0)
        usage = accountant.compute_usage(served)
        for cu, cu_usage in usage.items():
            expected = 0.0
            for name, alloc in decision.allocations.items():
                if alloc.accepted and alloc.compute_unit == cu:
                    expected += sum(
                        alloc.request.compute_cpus(5.0) for _ in alloc.paths
                    )
            assert cu_usage.used == pytest.approx(expected)

    def test_overbooked_flag(self, mixed_problem, decision_and_accountant):
        decision, accountant = decision_and_accountant
        # Load every slice at its full SLA: usage can exceed the reservation
        # (that is exactly what overbooking means).
        served = {}
        for name, alloc in decision.allocations.items():
            if not alloc.accepted:
                continue
            for bs in alloc.paths:
                served[(name, bs)] = alloc.request.sla_mbps
        usage = accountant.compute_usage(served)
        any_overbooked = any(u.overbooked for u in usage.values() if u.reserved > 0)
        radio = accountant.radio_usage(served)
        any_overbooked = any_overbooked or any(
            u.overbooked for u in radio.values() if u.reserved > 0
        )
        assert any_overbooked
