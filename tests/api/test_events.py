"""Event-bus contract: per-epoch events are delivered after the registry is
consistent, in deterministic order (EXPIRED -> RENEWED -> ADMITTED ->
REJECTED, names sorted within each kind), including the renewal
(archive + fresh admission) path from PR 4."""

from __future__ import annotations

import pytest

from repro.api import SliceBroker, SliceRequestV1
from repro.api.events import EventBus, LifecycleEvent, LifecycleEventKind
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators


def make_broker() -> SliceBroker:
    return SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver()
    )


def request(
    name: str, arrival: int = 0, duration: int = 2, slice_type: str = "uRLLC"
) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, slice_type, duration_epochs=duration, arrival_epoch=arrival
    )


def kinds_and_names(events) -> list[tuple[str, str]]:
    return [(event.kind.value, event.slice_name) for event in events]


class TestBusMechanics:
    def test_subscription_order_and_unsubscribe(self):
        bus = EventBus()
        seen: list[tuple[str, str]] = []
        bus.subscribe(lambda e: seen.append(("first", e.slice_name)))
        token = bus.subscribe(lambda e: seen.append(("second", e.slice_name)))
        event = LifecycleEvent(LifecycleEventKind.ADMITTED, "s1", epoch=0)
        bus.publish([event])
        assert seen == [("first", "s1"), ("second", "s1")]
        bus.unsubscribe(token)
        bus.publish([event])
        assert seen[-1] == ("first", "s1") and len(bus) == 1

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind), kinds=[LifecycleEventKind.EXPIRED])
        bus.publish(
            [
                LifecycleEvent(LifecycleEventKind.ADMITTED, "a", 0),
                LifecycleEvent(LifecycleEventKind.EXPIRED, "b", 0),
            ]
        )
        assert seen == [LifecycleEventKind.EXPIRED]


class TestEpochEventOrdering:
    def test_admissions_sorted_by_name(self):
        broker = make_broker()
        # One uRLLC + one mMTC fit the cold-start testbed together; submit in
        # reverse alphabetical order to observe the name sort.
        broker.submit_batch([request("zeta", slice_type="mMTC"), request("alpha")])
        report = broker.advance_epoch(0)
        assert kinds_and_names(report.events) == [
            ("admitted", "alpha"),
            ("admitted", "zeta"),
        ]

    def test_no_events_on_unchanged_epoch(self):
        broker = make_broker()
        broker.submit(request("s1", duration=4))
        broker.advance_epoch(0)
        report = broker.advance_epoch(1)  # committed slice re-confirmed: no transition
        assert report.events == ()

    def test_expiry_event(self):
        broker = make_broker()
        broker.submit(request("s1", duration=2))
        broker.advance_epoch(0)
        broker.advance_epoch(1)
        report = broker.advance_epoch(2)
        assert kinds_and_names(report.events) == [("expired", "s1")]
        assert report.idle

    def test_registry_is_consistent_when_events_are_delivered(self):
        broker = make_broker()
        observed: list[tuple[str, str]] = []

        def probe(event: LifecycleEvent) -> None:
            # Reading broker state from inside the callback must already see
            # the post-transition world.
            observed.append((event.kind.value, broker.status(event.slice_name).state))

        broker.events.subscribe(probe)
        broker.submit(request("s1", duration=2))
        broker.advance_epoch(0)
        broker.advance_epoch(2)
        assert observed == [("admitted", "admitted"), ("expired", "expired")]

    def test_renewal_path_orders_expired_renewed_admitted(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=0, duration=2))
        broker.advance_epoch(0)
        broker.advance_epoch(1)
        # Renewal booked at the expiry epoch: the old life expires, the name
        # re-registers (archive + fresh record) and is re-admitted -- all
        # within epoch 2, in exactly this order.
        broker.submit(request("s1", arrival=2, duration=2))
        report = broker.advance_epoch(2)
        assert kinds_and_names(report.events) == [
            ("expired", "s1"),
            ("renewed", "s1"),
            ("admitted", "s1"),
        ]
        assert report.expired == ("s1",)
        assert report.renewed == ("s1",)
        assert broker.status("s1").renewal_count == 1

    def test_renewal_of_long_expired_slice_has_no_expiry_event(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=0, duration=1))
        broker.advance_epoch(0)
        broker.advance_epoch(1)  # EXPIRED event fires here
        broker.advance_epoch(2)
        broker.submit(request("s1", arrival=3, duration=2))
        report = broker.advance_epoch(3)
        # The old life was already terminal going into epoch 3: only the
        # renewal + fresh admission are new facts.
        assert kinds_and_names(report.events) == [
            ("renewed", "s1"),
            ("admitted", "s1"),
        ]

    def test_admitted_event_carries_decision_metadata(self):
        broker = make_broker()
        broker.submit(request("s1", duration=2))
        report = broker.advance_epoch(0)
        (event,) = report.events
        assert event.kind is LifecycleEventKind.ADMITTED
        assert event.epoch == 0
        assert "objective_value" in event.metadata
        assert event.metadata["compute_unit"] is not None
        assert event.metadata["reserved_mbps_total"] > 0.0

    def test_released_event_is_synchronous(self):
        broker = make_broker()
        seen = []
        broker.events.subscribe(lambda e: seen.append(e.kind), kinds=[LifecycleEventKind.RELEASED])
        broker.submit(request("s1", duration=4))
        broker.advance_epoch(0)
        broker.release("s1", epoch=1)
        assert seen == [LifecycleEventKind.RELEASED]
        assert broker.status("s1").state == "released"

    def test_wrapping_a_driven_orchestrator_replays_no_history(self):
        from repro.controlplane.orchestrator import E2EOrchestrator

        orchestrator = E2EOrchestrator(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        orchestrator.submit_request(request("old", duration=4).to_request())
        orchestrator.run_epoch(0)
        # Wrapping an already-driven orchestrator must not replay its
        # history as spurious first-epoch events.
        broker = SliceBroker(orchestrator=orchestrator)
        seen = []
        broker.events.subscribe(lambda e: seen.append((e.kind.value, e.slice_name)))
        report = broker.advance_epoch(1)
        assert report.events == ()
        assert seen == []

    def test_transitions_committed_by_a_failed_epoch_are_published_later(self):
        from repro.api import SolverError

        class FlakySolver:
            def __init__(self):
                self.inner = DirectMILPSolver()
                self.fail_next = False

            def solve(self, problem):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("transient solver failure")
                return self.inner.solve(problem)

        solver = FlakySolver()
        broker = SliceBroker(topology=operators.testbed_topology(), solver=solver)
        seen = []
        broker.events.subscribe(lambda e: seen.append((e.kind.value, e.slice_name)))
        broker.submit(request("a", arrival=0, duration=2))
        broker.submit(request("late", arrival=2, duration=2))
        broker.advance_epoch(0)
        broker.advance_epoch(1)
        # Epoch 2: 'a' expires inside run_epoch, then the solve for 'late'
        # fails -- the expiry is committed but nothing is published.
        solver.fail_next = True
        with pytest.raises(SolverError):
            broker.advance_epoch(2)
        assert seen == [("admitted", "a")]
        # The retry publishes the missed expiry along with the new admission.
        broker.advance_epoch(3)
        assert seen == [
            ("admitted", "a"),
            ("expired", "a"),
            ("admitted", "late"),
        ]

    def test_subscriber_exceptions_propagate_to_the_publisher(self):
        broker = make_broker()

        def bad_subscriber(event):
            raise RuntimeError("subscriber bug")

        broker.events.subscribe(bad_subscriber)
        broker.submit(request("s1"))
        with pytest.raises(RuntimeError, match="subscriber bug"):
            broker.advance_epoch(0)

    def test_subscriber_failure_does_not_republish_transitions(self):
        broker = make_broker()
        seen = []
        broker.events.subscribe(lambda e: seen.append((e.kind.value, e.slice_name, e.epoch)))
        fail_once = {"armed": True}

        def flaky_subscriber(event):
            if fail_once["armed"]:
                fail_once["armed"] = False
                raise RuntimeError("subscriber hiccup")

        broker.events.subscribe(flaky_subscriber)
        broker.submit(request("s1", duration=4))
        with pytest.raises(RuntimeError, match="hiccup"):
            broker.advance_epoch(0)
        # Delivery is at-most-once per transition: the next epoch must not
        # re-publish the admission under a later epoch stamp.
        broker.advance_epoch(1)
        assert seen == [("admitted", "s1", 0)]
