"""HTTP/JSON transport: endpoints, wire-error taxonomy, event feed, and the
transport-level golden test (one scenario over the wire vs in process must be
bit-identical -- decisions, tickets, epoch reports, event order)."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.api import (
    BrokerClient,
    BrokerServer,
    CapacityError,
    DuplicateSliceError,
    LifecycleError,
    NotFoundError,
    SliceBroker,
    SliceRequestV1,
    ValidationError,
)
from repro.api.transport import (
    IDEMPOTENCY_BATCH_HEADER,
    MAX_BODY_BYTES,
    STATUS_BY_CODE,
)
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators

pytestmark = pytest.mark.transport


def make_broker(**kwargs) -> SliceBroker:
    return SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver(), **kwargs
    )


def request(name: str, arrival: int = 0, duration: int = 2) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, "uRLLC", duration_epochs=duration, arrival_epoch=arrival
    )


@pytest.fixture()
def served():
    broker = make_broker()
    with BrokerServer(broker) as server:
        with BrokerClient(server.host, server.port) as client:
            yield broker, server, client


def raw_exchange(
    server: BrokerServer,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict | None = None,
) -> tuple[int, dict]:
    """One raw HTTP exchange, for wire shapes the typed client won't emit."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        conn.close()


# --------------------------------------------------------------------- #
# Endpoints
# --------------------------------------------------------------------- #
class TestEndpoints:
    def test_submit_returns_ticket_dto(self, served):
        broker, _, client = served
        ticket = client.submit(request("s1", arrival=3, duration=7))
        assert ticket.slice_name == "s1"
        assert ticket.arrival_epoch == 3
        assert ticket.descriptor.slice_type == "uRLLC"
        assert broker.pending_count == 1

    def test_idempotency_header_replays_ticket(self, served):
        broker, _, client = served
        first = client.submit(request("s1", arrival=5), client_token="tok")
        second = client.submit(request("s1", arrival=5), client_token="tok")
        assert first == second
        assert first.client_token == "tok"
        assert broker.pending_count == 1

    def test_token_payload_conflict_is_duplicate_over_wire(self, served):
        _, _, client = served
        client.submit(request("s1", arrival=5), client_token="tok")
        with pytest.raises(DuplicateSliceError) as excinfo:
            client.submit(request("s1", arrival=6), client_token="tok")
        assert excinfo.value.details["client_token"] == "tok"

    def test_batch_submit_with_token_header(self, served):
        broker, _, client = served
        tickets = client.submit_batch(
            [request("a", arrival=1), request("b", arrival=1)],
            client_tokens=["t-a", None],
        )
        assert [t.slice_name for t in tickets] == ["a", "b"]
        assert tickets[0].client_token == "t-a"
        assert broker.pending_count == 2
        # Replaying the tokened entry returns the original ticket.
        again = client.submit(request("a", arrival=1), client_token="t-a")
        assert again == tickets[0]

    def test_batch_atomicity_over_wire(self, served):
        broker, _, client = served
        with pytest.raises(DuplicateSliceError):
            client.submit_batch([request("a", arrival=1), request("a", arrival=1)])
        assert broker.pending_count == 0

    def test_quote_is_pure_read(self, served):
        broker, _, client = served
        quote = client.quote(request("q1"))
        assert quote.slice_type == "uRLLC"
        assert quote.sla_mbps == pytest.approx(25.0)
        assert broker.pending_count == 0

    def test_status_list_release_lifecycle(self, served):
        _, _, client = served
        client.submit(request("s1", duration=4))
        assert client.status("s1").state == "queued"
        report = client.advance_epoch(0)
        assert report.accepted == ("s1",)
        assert client.status("s1").state == "admitted"
        assert [s.name for s in client.list_slices()] == ["s1"]
        released = client.release("s1", epoch=1)
        assert released.state == "released"
        assert client.status("s1").state == "released"

    def test_slice_names_with_url_hostile_characters(self, served):
        _, _, client = served
        name = "tenant/7:release me?&#"
        client.submit(
            SliceRequestV1.of(name, "mMTC", duration_epochs=2, arrival_epoch=9)
        )
        assert client.status(name).state == "queued"
        assert client.release(name, epoch=0).state == "released"

    def test_health_endpoint(self, served):
        _, _, client = served
        client.submit(request("s1", arrival=2))
        payload = client.health()
        assert payload["health"] == "healthy"
        assert payload["pending_requests"] == 1


# --------------------------------------------------------------------- #
# Wire-error taxonomy (satellite: never a bare 500/traceback)
# --------------------------------------------------------------------- #
class TestWireErrors:
    def assert_taxonomy(self, status: int, payload: dict, code: str):
        assert payload["error"] == code
        assert status == STATUS_BY_CODE[code]
        assert set(payload) == {"error", "message", "details"}
        assert "Traceback" not in payload["message"]

    def test_malformed_json_body(self, served):
        _, server, _ = served
        status, payload = raw_exchange(server, "POST", "/v1/slices", body=b"{not json")
        self.assert_taxonomy(status, payload, "validation")
        assert "malformed JSON" in payload["message"]

    def test_empty_body_on_post(self, served):
        _, server, _ = served
        status, payload = raw_exchange(server, "POST", "/v1/epochs")
        self.assert_taxonomy(status, payload, "validation")

    def test_unknown_route(self, served):
        _, server, _ = served
        status, payload = raw_exchange(server, "GET", "/v1/nope")
        self.assert_taxonomy(status, payload, "not_found")

    def test_known_path_wrong_method(self, served):
        _, server, _ = served
        status, payload = raw_exchange(server, "PUT", "/v1/slices")
        self.assert_taxonomy(status, payload, "not_found")
        status, payload = raw_exchange(server, "DELETE", "/v1/epochs")
        self.assert_taxonomy(status, payload, "not_found")

    def test_version_mismatched_payload(self, served):
        _, server, _ = served
        body = request("s1").to_dict()
        body["schema_version"] = 99
        status, payload = raw_exchange(
            server, "POST", "/v1/slices", body=json.dumps(body).encode()
        )
        self.assert_taxonomy(status, payload, "validation")
        assert payload["details"] == {"supported_version": 1, "payload_version": 99}

    def test_oversized_batch(self, served):
        _, server, _ = served
        entries = [request(f"s{i}", arrival=1).to_dict() for i in range(3)]
        body = json.dumps({"requests": entries * 200}).encode()
        status, payload = raw_exchange(server, "POST", "/v1/slices:batch", body=body)
        self.assert_taxonomy(status, payload, "validation")
        assert payload["details"]["max_batch"] == server.max_batch

    def test_oversized_body(self, served):
        _, server, _ = served
        status, payload = raw_exchange(
            server,
            "POST",
            "/v1/slices",
            body=b" ",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        self.assert_taxonomy(status, payload, "validation")

    def test_non_object_json_body(self, served):
        _, server, _ = served
        status, payload = raw_exchange(
            server, "POST", "/v1/slices", body=json.dumps([1, 2]).encode()
        )
        self.assert_taxonomy(status, payload, "validation")

    def test_bad_epoch_field(self, served):
        _, server, _ = served
        for bad in ({"epoch": "zero"}, {"epoch": True}, {}):
            status, payload = raw_exchange(
                server, "POST", "/v1/epochs", body=json.dumps(bad).encode()
            )
            self.assert_taxonomy(status, payload, "validation")

    def test_malformed_batch_token_header(self, served):
        _, server, _ = served
        body = json.dumps({"requests": [request("s1", arrival=1).to_dict()]}).encode()
        status, payload = raw_exchange(
            server,
            "POST",
            "/v1/slices:batch",
            body=body,
            headers={IDEMPOTENCY_BATCH_HEADER: "not json"},
        )
        self.assert_taxonomy(status, payload, "validation")
        status, payload = raw_exchange(
            server,
            "POST",
            "/v1/slices:batch",
            body=body,
            headers={IDEMPOTENCY_BATCH_HEADER: json.dumps(["a", "b"])},
        )
        self.assert_taxonomy(status, payload, "validation")

    def test_unknown_slice_status_is_lifecycle(self, served):
        _, server, client = served
        with pytest.raises(LifecycleError):
            client.status("ghost")
        status, payload = raw_exchange(server, "GET", "/v1/slices/ghost")
        self.assert_taxonomy(status, payload, "lifecycle")

    def test_bad_events_cursor(self, served):
        _, server, _ = served
        status, payload = raw_exchange(server, "GET", "/v1/events?since=later")
        self.assert_taxonomy(status, payload, "validation")

    def test_intake_backpressure_maps_to_429(self):
        broker = make_broker(max_pending=2)
        with BrokerServer(broker) as server:
            with BrokerClient(server.host, server.port) as client:
                client.submit(request("a", arrival=1))
                client.submit(request("b", arrival=1))
                with pytest.raises(CapacityError) as excinfo:
                    client.submit(request("c", arrival=1))
                assert excinfo.value.details["max_pending"] == 2
                status, payload = raw_exchange(
                    server,
                    "POST",
                    "/v1/slices",
                    body=json.dumps(request("c", arrival=1).to_dict()).encode(),
                )
                assert status == 429
                assert payload["error"] == "capacity"
                # Draining the queue lifts the backpressure.
                client.advance_epoch(1)
                assert client.submit(request("c", arrival=2)).slice_name == "c"

    def test_error_round_trip_preserves_type(self, served):
        _, _, client = served
        with pytest.raises(ValidationError):
            client.submit({"name": "x"})  # not a versioned payload
        with pytest.raises(NotFoundError):
            client._request("GET", "/v1/definitely-not-a-route")


# --------------------------------------------------------------------- #
# Event feed
# --------------------------------------------------------------------- #
class TestEventFeed:
    def test_cursor_paging_is_exactly_once_and_ordered(self, served):
        _, _, client = served
        client.submit_batch([request("a", duration=2), request("b", duration=2)])
        client.advance_epoch(0)
        client.release("a", epoch=1)
        first = client.events(0, limit=2)
        rest = client.events(first.next_cursor)
        seqs = [seq for seq, _ in list(first) + list(rest)]
        assert seqs == sorted(set(seqs))
        kinds = [event.kind.value for _, event in list(first) + list(rest)]
        assert kinds.count("released") == 1
        # The feed is exhausted: polling the final cursor returns nothing.
        assert len(client.events(rest.next_cursor)) == 0

    def test_feed_matches_report_event_order(self, served):
        _, _, client = served
        client.submit_batch([request(f"s{i}", duration=2) for i in range(3)])
        report = client.advance_epoch(0)
        page = client.events(0)
        assert tuple(event for _, event in page) == report.events


# --------------------------------------------------------------------- #
# Event-log retention (bounded ring)
# --------------------------------------------------------------------- #
class TestEventRetention:
    @pytest.fixture()
    def tiny_log(self):
        broker = make_broker()
        with BrokerServer(broker, event_retention=4) as server:
            with BrokerClient(server.host, server.port) as client:
                yield broker, server, client

    @staticmethod
    def publish(client, count: int = 8) -> int:
        """Drive > retention events; returns the feed's end cursor."""
        client.submit_batch(
            [request(f"s{i}", duration=2) for i in range(count)]
        )
        client.advance_epoch(0)  # one queued + one accepted/rejected per slice
        return client.events(10**9, limit=0).next_cursor

    def test_evicted_cursor_is_validation_naming_oldest_seq(self, tiny_log):
        _, server, client = tiny_log
        total = self.publish(client)
        assert total > 4
        with pytest.raises(ValidationError) as excinfo:
            client.events(0)
        details = excinfo.value.details
        assert details["oldest_available_seq"] == total - 4 + 1
        assert details["requested_since"] == 0
        assert details["retention"] == 4
        status, payload = raw_exchange(server, "GET", "/v1/events?since=0")
        assert status == STATUS_BY_CODE["validation"]
        assert payload["error"] == "validation"

    def test_retained_tail_still_pages_exactly_once(self, tiny_log):
        _, _, client = tiny_log
        total = self.publish(client)
        oldest_cursor = total - 4
        first = client.events(oldest_cursor, limit=3)
        rest = client.events(first.next_cursor)
        assert len(first) == 3
        assert len(rest) == 1
        seqs = [seq for seq, _ in list(first) + list(rest)]
        assert seqs == list(range(oldest_cursor + 1, total + 1))

    def test_health_counts_total_published_not_retained(self, tiny_log):
        _, _, client = tiny_log
        total = self.publish(client)
        assert client.health()["events_published"] == total

    def test_retention_must_be_positive(self):
        with pytest.raises(ValidationError, match="retention"):
            BrokerServer(make_broker(), event_retention=0)

    def test_default_retention_keeps_small_feeds_whole(self, served):
        _, _, client = served
        client.submit_batch([request(f"s{i}", duration=2) for i in range(3)])
        client.advance_epoch(0)
        assert len(client.events(0)) > 0  # cursor 0 never evicted


# --------------------------------------------------------------------- #
# Paged slice listing
# --------------------------------------------------------------------- #
class TestSlicePaging:
    @staticmethod
    def admit(client, count: int = 5) -> list[str]:
        names = [f"s{i}" for i in range(count)]
        client.submit_batch([request(name, duration=4) for name in names])
        client.advance_epoch(0)
        return sorted(names)

    def test_offset_limit_windows_are_stable_and_disjoint(self, served):
        _, _, client = served
        names = self.admit(client, 5)
        first = client.list_slices(limit=2)
        second = client.list_slices(2, limit=2)
        tail = client.list_slices(4)
        assert [s.name for s in first + second + tail] == names
        assert (first.total, first.offset) == (5, 0)
        assert (second.total, second.offset) == (5, 2)
        assert (tail.total, tail.offset) == (5, 4)

    def test_full_listing_is_unchanged_by_default(self, served):
        _, _, client = served
        names = self.admit(client, 3)
        page = client.list_slices()
        assert [s.name for s in page] == names
        assert page.total == 3

    def test_offset_past_end_is_empty_not_an_error(self, served):
        _, _, client = served
        self.admit(client, 2)
        page = client.list_slices(10)
        assert list(page) == []
        assert page.total == 2

    def test_bad_paging_params_are_validation_errors(self, served):
        _, server, _ = served
        for query in ("offset=x", "limit=x", "offset=-1", "limit=-1"):
            status, payload = raw_exchange(server, "GET", f"/v1/slices?{query}")
            assert status == STATUS_BY_CODE["validation"], query
            assert payload["error"] == "validation", query

    def test_facade_pages_identically(self, served):
        broker, _, client = served
        self.admit(client, 4)
        wire = [s.to_dict() for s in client.list_slices(1, limit=2)]
        local = [s.to_dict() for s in broker.list_slices(1, limit=2)]
        assert wire == local
        assert broker.slice_count() == 4


# --------------------------------------------------------------------- #
# Transport-level golden test
# --------------------------------------------------------------------- #
class TestTransportGolden:
    """The same scenario driven over HTTP and in process is bit-identical."""

    def drive(self, submit, submit_batch, quote, status, list_slices, release,
              advance_epoch):
        """One scenario: batch intake, deferred arrival, renewal, release."""
        outputs = []
        outputs.append(
            [t.to_dict() for t in submit_batch(
                [request("alpha", duration=2), request("beta", duration=3),
                 SliceRequestV1.of("gamma", "eMBB", duration_epochs=2)],
                ["t-alpha", None, "t-gamma"],
            )]
        )
        outputs.append(submit(request("deferred", arrival=2, duration=2), None).to_dict())
        outputs.append(submit(request("alpha", duration=2), "t-alpha").to_dict())
        outputs.append(quote(request("alpha", duration=2)).to_dict())
        for epoch in range(5):
            if epoch == 1:
                outputs.append(release("gamma", epoch).to_dict())
            if epoch == 3:
                # Renew alpha after its first life expired at epoch 2.
                outputs.append(submit(request("alpha", arrival=3, duration=2), None).to_dict())
            outputs.append(advance_epoch(epoch).to_dict())
            outputs.append([s.to_dict() for s in list_slices()])
        outputs.append(status("alpha").to_dict())
        outputs.append(status("gamma").to_dict())
        return outputs

    @staticmethod
    def scrub_wall_clock(outputs):
        """Zero the one wall-clock field (solver_runtime_s) in epoch reports;
        everything else -- decisions, objective values, solver iteration
        counts, events -- must match bit-for-bit."""

        def scrub(node):
            if isinstance(node, dict):
                return {
                    key: 0.0 if key == "solver_runtime_s" else scrub(value)
                    for key, value in node.items()
                }
            if isinstance(node, list):
                return [scrub(item) for item in node]
            return node

        return scrub(outputs)

    def test_wire_equals_in_process(self):
        local = make_broker()
        local_events = []
        local.events.subscribe(lambda event: local_events.append(event))
        local_outputs = self.drive(
            lambda req, token: local.submit(req, client_token=token),
            lambda reqs, tokens: local.submit_batch(reqs, client_tokens=tokens),
            local.quote,
            local.status,
            local.list_slices,
            lambda name, epoch: local.release(name, epoch=epoch),
            local.advance_epoch,
        )

        remote = make_broker()
        with BrokerServer(remote) as server:
            with BrokerClient(server.host, server.port) as client:
                wire_outputs = self.drive(
                    lambda req, token: client.submit(req, client_token=token),
                    lambda reqs, tokens: client.submit_batch(reqs, client_tokens=tokens),
                    client.quote,
                    client.status,
                    client.list_slices,
                    lambda name, epoch: client.release(name, epoch=epoch),
                    client.advance_epoch,
                )
                wire_events = [event for _, event in client.events(0)]

        # Bit-identical wire payloads for every operation's result, in order:
        # tickets, quotes, epoch reports (decisions, solver stats, events),
        # statuses and listings all round-trip identically.
        assert json.dumps(self.scrub_wall_clock(wire_outputs), sort_keys=True) == (
            json.dumps(self.scrub_wall_clock(local_outputs), sort_keys=True)
        )
        # Same events, same order, same payloads -- over the wire the feed is
        # cursor-paged, in process it is the subscription stream.
        assert [e.to_dict() for e in wire_events] == [
            e.to_dict() for e in local_events
        ]
