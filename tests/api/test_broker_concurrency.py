"""Concurrency safety of the SliceBroker facade: the idempotency-token race,
admission-path locking under thread pools, intake backpressure, cache-limit
validation, and the incremental replay-cache eviction."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    BrokerClient,
    BrokerServer,
    CapacityError,
    SliceBroker,
    SliceRequestV1,
    ValidationError,
)
from repro.api.broker import _evict_oldest
from repro.controlplane.slice_manager import SliceManager
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators

pytestmark = pytest.mark.transport


def make_broker(**kwargs) -> SliceBroker:
    return SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver(), **kwargs
    )


def request(name: str, arrival: int = 0, duration: int = 2) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, "uRLLC", duration_epochs=duration, arrival_epoch=arrival
    )


# --------------------------------------------------------------------- #
# The idempotency-token race (satellite regression test)
# --------------------------------------------------------------------- #
class TestTokenRace:
    def test_concurrent_same_token_submits_enqueue_exactly_once(self):
        """Hammer one token from a thread pool: exactly one ticket may win
        the enqueue; every other submit must replay that same ticket."""
        broker = make_broker()
        workers = 16
        attempts = 64
        barrier = threading.Barrier(workers)
        payload = request("contended", arrival=9)

        def hammer(_):
            barrier.wait()
            results = []
            for _ in range(attempts // workers):
                results.append(broker.submit(payload, client_token="tok"))
            return results

        with ThreadPoolExecutor(max_workers=workers) as pool:
            tickets = [
                ticket
                for batch in pool.map(hammer, range(workers))
                for ticket in batch
            ]

        assert len(tickets) == (attempts // workers) * workers
        assert len({ticket.ticket_id for ticket in tickets}) == 1
        assert all(ticket == tickets[0] for ticket in tickets)
        assert broker.pending_count == 1
        assert broker.status("contended").state == "queued"

    def test_race_repeats_across_fresh_tokens(self):
        """Many rounds, each its own token/name: one winner per round."""
        broker = make_broker()
        workers = 8
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for round_index in range(10):
                payload = request(f"s{round_index}", arrival=9)
                token = f"tok-{round_index}"
                barrier = threading.Barrier(workers)

                def submit_once(_):
                    barrier.wait()
                    return broker.submit(payload, client_token=token)

                tickets = list(pool.map(submit_once, range(workers)))
                assert len({t.ticket_id for t in tickets}) == 1
        assert broker.pending_count == 10

    def test_concurrent_distinct_submits_all_win_unique_tickets(self):
        broker = make_broker()
        count = 64
        barrier = threading.Barrier(16)

        def submit_one(index):
            if index < 16:
                barrier.wait()
            return broker.submit(request(f"s{index}", arrival=9), client_token=f"t{index}")

        with ThreadPoolExecutor(max_workers=16) as pool:
            tickets = list(pool.map(submit_one, range(count)))
        assert len({t.ticket_id for t in tickets}) == count
        assert broker.pending_count == count

    def test_same_token_race_over_the_wire(self):
        """The transport inherits the guarantee: concurrent HTTP sessions
        replaying one idempotency token receive one identical ticket."""
        broker = make_broker()
        payload = request("contended", arrival=9)
        workers = 8
        with BrokerServer(broker) as server:
            barrier = threading.Barrier(workers)

            def session(_):
                with BrokerClient(server.host, server.port) as client:
                    barrier.wait()
                    return client.submit(payload, client_token="tok")

            with ThreadPoolExecutor(max_workers=workers) as pool:
                tickets = list(pool.map(session, range(workers)))
        assert len({t.ticket_id for t in tickets}) == 1
        assert broker.pending_count == 1


# --------------------------------------------------------------------- #
# Intake backpressure
# --------------------------------------------------------------------- #
class TestBackpressure:
    def test_bound_is_enforced_under_concurrency(self):
        bound = 8
        broker = make_broker(max_pending=bound)
        outcomes = []
        lock = threading.Lock()

        def submit_one(index):
            try:
                ticket = broker.submit(request(f"s{index}", arrival=9))
                with lock:
                    outcomes.append(("ok", ticket.slice_name))
            except CapacityError as error:
                with lock:
                    outcomes.append(("shed", error.details["max_pending"]))

        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(submit_one, range(32)))

        accepted = [entry for entry in outcomes if entry[0] == "ok"]
        shed = [entry for entry in outcomes if entry[0] == "shed"]
        assert len(accepted) == bound
        assert len(shed) == 32 - bound
        assert all(entry[1] == bound for entry in shed)
        assert broker.pending_count == bound

    def test_rejected_submit_leaves_no_trace(self):
        broker = make_broker(max_pending=1)
        broker.submit(request("a", arrival=9))
        with pytest.raises(CapacityError):
            broker.submit(request("b", arrival=9), client_token="t-b")
        # The shed submission neither queued nor burned its token.
        with pytest.raises(Exception):
            broker.status("b")
        broker.advance_epoch(0)  # drains nothing (arrival 9) but token stays free
        broker.release("a", epoch=0)
        assert broker.submit(request("b", arrival=9), client_token="t-b").slice_name == "b"

    def test_batch_rollback_respects_bound(self):
        broker = make_broker(max_pending=2)
        with pytest.raises(CapacityError):
            broker.submit_batch(
                [request("a", arrival=9), request("b", arrival=9), request("c", arrival=9)]
            )
        assert broker.pending_count == 0
        # The bound itself still admits a fitting batch afterwards.
        assert len(broker.submit_batch([request("a", arrival=9), request("b", arrival=9)])) == 2

    def test_unbounded_by_default(self):
        broker = make_broker()
        for index in range(64):
            broker.submit(request(f"s{index}", arrival=9))
        assert broker.pending_count == 64


# --------------------------------------------------------------------- #
# Constructor validation (satellite: cache_limit >= 1)
# --------------------------------------------------------------------- #
class TestLimitsValidation:
    @pytest.mark.parametrize("bad", [0, -1, -65536])
    def test_cache_limit_below_one_is_rejected(self, bad):
        with pytest.raises(ValidationError, match="cache_limit"):
            make_broker(cache_limit=bad)

    def test_cache_limit_one_preserves_same_call_replay(self):
        broker = make_broker(cache_limit=1)
        first = broker.submit(request("a", arrival=9), client_token="t-a")
        assert broker.submit(request("a", arrival=9), client_token="t-a") == first

    @pytest.mark.parametrize("bad", [0, -5])
    def test_max_pending_below_one_is_rejected(self, bad):
        with pytest.raises(ValidationError, match="max_pending"):
            make_broker(max_pending=bad)

    def test_evict_oldest_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError, match=">= 1"):
            _evict_oldest({"a": 1}, 0)


# --------------------------------------------------------------------- #
# Incremental replay-cache eviction (satellite: no-behavior-change + cost)
# --------------------------------------------------------------------- #
class TestIncrementalEviction:
    def test_behavior_unchanged_collected_evicted_oldest_first(self):
        broker = make_broker(cache_limit=2)
        broker.submit(request("old1", duration=4), client_token="t-old1")
        broker.submit(request("old2", duration=4), client_token="t-old2")
        broker.advance_epoch(0)  # both collected: tokens now evictable
        broker.submit(request("e", arrival=9), client_token="t-e")
        assert "t-old1" not in broker._tickets_by_token
        assert {"t-old2", "t-e"} <= set(broker._tickets_by_token)
        broker.submit(request("f", arrival=9), client_token="t-f")
        assert "t-old2" not in broker._tickets_by_token
        assert set(broker._tickets_by_token) == {"t-e", "t-f"}

    def test_behavior_unchanged_queued_tokens_never_evicted(self):
        broker = make_broker(cache_limit=2)
        first = broker.submit(request("a", arrival=9), client_token="t-a")
        broker.submit(request("b", arrival=9), client_token="t-b")
        broker.submit(request("c", arrival=9), client_token="t-c")
        # All three still queued: over-limit, but every retry must replay.
        assert len(broker._tickets_by_token) == 3
        assert broker.submit(request("a", arrival=9), client_token="t-a") == first

    def test_mixed_cache_settles_exactly_at_limit(self):
        broker = make_broker(cache_limit=3)
        broker.submit(request("live", arrival=9), client_token="t-live")
        for index in range(6):
            broker.submit(request(f"c{index}", duration=4), client_token=f"t-c{index}")
            broker.advance_epoch(index)  # collect immediately: token evictable
        # The queued token survives every eviction wave; the cache holds
        # exactly the limit, ending with the newest evictable entries.
        assert len(broker._tickets_by_token) == 3
        assert "t-live" in broker._tickets_by_token

    def test_eviction_does_not_rescan_the_intake_queue(self, monkeypatch):
        """The O(queue + cache) rebuild is gone: over-limit submits never
        touch ``pending_requests`` (the queued-token track answers in O(1))."""
        broker = make_broker(cache_limit=4)
        for index in range(4):
            broker.submit(request(f"c{index}", duration=4), client_token=f"t-{index}")
        broker.advance_epoch(0)  # all collected -> evictable

        accesses = 0
        original = SliceManager.pending_requests.fget

        def counting(self):
            nonlocal accesses
            accesses += 1
            return original(self)

        monkeypatch.setattr(SliceManager, "pending_requests", property(counting))
        for index in range(16):
            broker.submit(request(f"n{index}", arrival=9), client_token=f"t-n{index}")
        assert accesses == 0

    def test_full_pass_guard_terminates_when_everything_is_queued(self):
        broker = make_broker(cache_limit=1)
        for index in range(32):
            broker.submit(request(f"s{index}", arrival=9), client_token=f"t-{index}")
        # Nothing is evictable (all queued): the scan stops after one pass,
        # the cache is bounded by the real queue length, replays all work.
        assert len(broker._tickets_by_token) == 32
        assert broker.pending_count == 32


# --------------------------------------------------------------------- #
# Mixed concurrent traffic over one broker
# --------------------------------------------------------------------- #
class TestMixedTraffic:
    def test_reads_and_writes_interleave_safely(self):
        broker = make_broker()
        errors = []

        def tenant(index):
            try:
                name = f"s{index}"
                broker.submit(request(name, arrival=9), client_token=f"t{index}")
                broker.status(name)
                broker.quote(request(name, arrival=9))
                broker.list_slices()
                if index % 3 == 0:
                    broker.release(name, epoch=0)
            except Exception as error:  # noqa: BLE001 -- collected for the assert
                errors.append(error)

        with ThreadPoolExecutor(max_workers=12) as pool:
            list(pool.map(tenant, range(48)))
        assert errors == []
        released = sum(1 for index in range(48) if index % 3 == 0)
        assert broker.pending_count == 48 - released
