"""SliceBroker facade behaviour: submission/tickets, batch atomicity,
idempotency tokens, quotes, statuses, release, and bit-identical equivalence
with driving the orchestrator directly."""

from __future__ import annotations

import pytest

from repro.api import SliceBroker, SliceRequestV1
from repro.api.dtos import AdmissionTicket, EpochReport
from repro.controlplane.orchestrator import E2EOrchestrator
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators


def make_broker() -> SliceBroker:
    return SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver()
    )


def request(name: str, arrival: int = 0, duration: int = 2) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, "uRLLC", duration_epochs=duration, arrival_epoch=arrival
    )


class TestSubmission:
    def test_ticket_carries_descriptor(self):
        broker = make_broker()
        ticket = broker.submit(request("s1", arrival=3, duration=7))
        assert isinstance(ticket, AdmissionTicket)
        assert ticket.slice_name == "s1"
        assert ticket.arrival_epoch == 3
        assert ticket.descriptor.slice_type == "uRLLC"
        assert ticket.descriptor.duration_epochs == 7
        assert broker.pending_count == 1
        assert broker.status("s1").state == "queued"

    def test_accepts_all_three_request_forms(self):
        broker = make_broker()
        dto = request("a", arrival=9)
        broker.submit(dto)
        broker.submit(dto.to_dict() | {"name": "b"})
        broker.submit(request("c", arrival=9).to_request())
        assert broker.pending_count == 3

    def test_token_replay_returns_equal_ticket_without_requeueing(self):
        broker = make_broker()
        first = broker.submit(request("s1", arrival=5), client_token="tok")
        second = broker.submit(request("s1", arrival=5), client_token="tok")
        assert first == second
        assert broker.pending_count == 1

    def test_ticket_ids_are_unique_and_monotonic(self):
        broker = make_broker()
        ids = [broker.submit(request(f"s{i}", arrival=9)).ticket_id for i in range(3)]
        assert len(set(ids)) == 3
        assert ids == sorted(ids)

    def test_deferred_submission_waits_for_arrival(self):
        broker = make_broker()
        broker.submit(request("later", arrival=2, duration=2))
        assert broker.advance_epoch(0).idle
        assert broker.advance_epoch(1).idle
        report = broker.advance_epoch(2)
        assert report.accepted == ("later",)

    def test_batch_rollback_restores_token_cache(self):
        broker = make_broker()
        with pytest.raises(Exception):
            broker.submit_batch(
                [request("a", arrival=2), request("a", arrival=2)],
                client_tokens=["t-a", "t-b"],
            )
        # The rolled-back token is free again and maps to a fresh submission.
        ticket = broker.submit(request("a", arrival=2), client_token="t-a")
        assert ticket.slice_name == "a"
        assert broker.pending_count == 1

    def test_batch_rollback_restores_released_markers(self):
        broker = make_broker()
        broker.submit(request("x", arrival=5))
        broker.release("x", epoch=0)
        assert broker.status("x").state == "released"
        with pytest.raises(Exception):
            # 'x' re-enqueues (popping the released marker), then the
            # duplicate 'y' fails the batch -- the rollback must restore
            # the marker along with the queue.
            broker.submit_batch(
                [request("x", arrival=5), request("y", arrival=5), request("y", arrival=5)]
            )
        assert broker.pending_count == 0
        assert broker.status("x").state == "released"

    def test_batch_replays_are_not_rolled_back(self):
        broker = make_broker()
        original = broker.submit(request("a", arrival=5), client_token="t-a")
        with pytest.raises(Exception):
            broker.submit_batch(
                [request("a", arrival=5), request("b", arrival=5), request("b", arrival=5)],
                client_tokens=["t-a", None, None],
            )
        # The pre-existing submission survives the failed batch untouched.
        assert broker.pending_count == 1
        assert broker.submit(request("a", arrival=5), client_token="t-a") == original


class TestTokenInvalidation:
    def test_release_of_queued_request_voids_its_token(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=4), client_token="tok")
        broker.release("s1", epoch=0)
        # A retry under the cancelled token must re-enqueue, not replay the
        # stale ticket of the withdrawn submission.
        ticket = broker.submit(request("s1", arrival=4), client_token="tok")
        assert broker.pending_count == 1
        assert broker.status("s1").state == "queued"
        assert ticket.slice_name == "s1"

    def test_collected_submissions_keep_their_tokens(self):
        broker = make_broker()
        original = broker.submit(request("s1", duration=4), client_token="tok")
        broker.advance_epoch(0)  # collected and admitted
        # Replay after collection still deduplicates (at-most-once intake).
        assert broker.submit(request("s1", duration=4), client_token="tok") == original
        assert broker.pending_count == 0


class TestQuoteAndStatus:
    def test_quote_is_pure(self):
        broker = make_broker()
        quote = broker.quote(request("probe"))
        assert quote.slice_name == "probe"
        assert 0.0 < quote.forecast_peak_mbps <= quote.sla_mbps
        assert broker.pending_count == 0
        with pytest.raises(Exception):
            broker.status("probe")  # nothing was enqueued

    def test_quote_respects_forecast_overrides(self):
        from repro.core.forecast_inputs import ForecastInput

        broker = make_broker()
        broker.set_forecast_override("s1", ForecastInput(lambda_hat_mbps=4.0, sigma_hat=0.5))
        quote = broker.quote(request("s1"))
        assert quote.forecast_peak_mbps == pytest.approx(4.0)
        assert quote.forecast_sigma == pytest.approx(0.5)

    def test_status_reflects_full_lifecycle(self):
        broker = make_broker()
        broker.submit(request("s1", duration=2))
        assert broker.status("s1").state == "queued"
        broker.advance_epoch(0)
        status = broker.status("s1")
        assert status.state == "admitted"
        assert status.admitted_epoch == 0
        assert status.expires_at == 2
        assert status.compute_unit is not None
        assert status.reservations_mbps
        broker.advance_epoch(2)
        assert broker.status("s1").state == "expired"

    def test_list_slices_includes_queued_and_registered(self):
        broker = make_broker()
        broker.submit(request("active", duration=4))
        broker.advance_epoch(0)
        broker.submit(request("queued-later", arrival=9))
        states = {status.name: status.state for status in broker.list_slices()}
        assert states == {"active": "admitted", "queued-later": "queued"}


class TestRelease:
    def test_release_of_queued_request_withdraws_it(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=4))
        status = broker.release("s1", epoch=0)
        assert status.state == "released"
        assert broker.pending_count == 0
        # The withdrawal is remembered: status() reports the release instead
        # of claiming the name was never submitted, and the name may be
        # re-submitted afresh.
        assert broker.status("s1").state == "released"
        assert [s.name for s in broker.list_slices()] == ["s1"]
        broker.submit(request("s1", arrival=4))
        assert broker.status("s1").state == "queued"

    def test_released_slice_frees_capacity_next_epoch(self):
        broker = make_broker()
        broker.submit(request("s1", duration=10))
        broker.advance_epoch(0)
        broker.release("s1", epoch=1)
        report = broker.advance_epoch(1)
        assert report.idle
        assert broker.status("s1").state == "released"

    def test_release_prefers_the_live_slice_over_a_queued_renewal(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=0, duration=2))
        broker.advance_epoch(0)
        # Pre-book a legal renewal at the expiry epoch, then release early:
        # the live slice must terminate; the queued renewal stays queued.
        broker.submit(request("s1", arrival=2, duration=2))
        status = broker.status("s1")
        assert status.state == "admitted"  # live record wins over the queue
        released = broker.release("s1", epoch=1)
        assert released.state == "released"
        assert broker.pending_count == 1  # the renewal is still queued
        assert broker.status("s1").state == "queued"
        # A second release cancels the queued renewal.
        broker.release("s1", epoch=1)
        assert broker.pending_count == 0

    def test_conflicting_config_and_orchestrator_is_rejected(self):
        from repro.api import ValidationError
        from repro.controlplane.orchestrator import OrchestratorConfig

        orchestrator = E2EOrchestrator(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        with pytest.raises(ValidationError):
            SliceBroker(
                orchestrator=orchestrator,
                config=OrchestratorConfig(epochs_per_day=7),
            )

    def test_queued_token_tracking_is_pruned_after_collection(self):
        broker = make_broker()
        broker.submit(request("s1", duration=2), client_token="tok")
        assert broker._token_by_queued_name == {"s1": "tok"}
        broker.advance_epoch(0)  # collected: no longer queued
        assert broker._token_by_queued_name == {}
        # The replay cache itself survives collection (at-most-once intake).
        assert broker.submit(request("s1", duration=2), client_token="tok")

    def test_token_cache_eviction_spares_queued_submissions(self):
        broker = SliceBroker(
            topology=operators.testbed_topology(),
            solver=DirectMILPSolver(),
            cache_limit=2,
        )
        first = broker.submit(request("a", arrival=9), client_token="t-a")
        broker.submit(request("b", arrival=9), client_token="t-b")
        broker.submit(request("c", arrival=9), client_token="t-c")
        # All three submissions are still queued, so none of their tokens may
        # be evicted even though the cache is over its limit: the retry
        # contract of a live submission always holds.
        assert broker.submit(request("a", arrival=9), client_token="t-a") == first
        assert broker.pending_count == 3

    def test_token_cache_evicts_collected_submissions_first(self):
        broker = SliceBroker(
            topology=operators.testbed_topology(),
            solver=DirectMILPSolver(),
            cache_limit=1,
        )
        broker.submit(request("old", duration=4), client_token="t-old")
        broker.advance_epoch(0)  # collected: its token is now evictable
        broker.submit(request("e", arrival=9), client_token="t-e")
        broker.submit(request("f", arrival=9), client_token="t-f")
        assert "t-old" not in broker._tickets_by_token
        assert {"t-e", "t-f"} <= set(broker._tickets_by_token)

    def test_released_name_can_be_renewed(self):
        broker = make_broker()
        broker.submit(request("s1", duration=10))
        broker.advance_epoch(0)
        broker.release("s1", epoch=1)
        broker.submit(request("s1", arrival=2, duration=2))
        report = broker.advance_epoch(2)
        assert report.accepted == ("s1",)
        status = broker.status("s1")
        assert status.state == "admitted"
        assert status.renewal_count == 1


class TestFacadeEquivalence:
    def test_bit_identical_to_direct_orchestrator_calls(self):
        """The facade adds intake/reporting around the same call sequence:
        decisions (allocations, objective, solver trajectory) are identical."""
        requests = [
            request("a", arrival=0, duration=3),
            request("b", arrival=1, duration=3),
            request("c", arrival=2, duration=2),
        ]

        direct = E2EOrchestrator(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        for dto in requests:
            direct.submit_request(dto.to_request())

        broker = make_broker()
        broker.submit_batch(requests)

        for epoch in range(5):
            expected = direct.run_epoch(epoch)
            report = broker.advance_epoch(epoch)
            actual = broker.last_decision
            assert isinstance(report, EpochReport)
            assert report.epoch == epoch
            assert actual.objective_value == expected.objective_value
            assert sorted(actual.allocations) == sorted(expected.allocations)
            for name, allocation in expected.allocations.items():
                mirrored = actual.allocations[name]
                assert mirrored.accepted == allocation.accepted
                assert mirrored.compute_unit == allocation.compute_unit
                assert mirrored.reservations_mbps == allocation.reservations_mbps
            assert report.accepted == tuple(sorted(expected.accepted_tenants))
            assert actual.stats.iterations == expected.stats.iterations


class TestTimeTruncationSurfacing:
    """A budget-stopped solve must be visible at the API boundary (PR 7)."""

    class TruncatingSolver:
        """Wraps the exact solver but stamps its stats as time-truncated."""

        def __init__(self):
            self.inner = DirectMILPSolver()

        def solve(self, problem):
            from dataclasses import replace

            decision = self.inner.solve(problem)
            decision.stats = replace(
                decision.stats,
                time_truncated=True,
                optimal=False,
                message=decision.stats.message
                + " (time limit reached; incumbent not certified)",
            )
            return decision

    def test_report_carries_the_truncation_flag(self):
        broker = SliceBroker(
            topology=operators.testbed_topology(), solver=self.TruncatingSolver()
        )
        broker.submit(request("s1"))
        report = broker.advance_epoch(0)
        assert report.solver_time_truncated
        assert "not certified" in report.solver_message
        # ...and survives the wire round-trip.
        assert EpochReport.from_dict(report.to_dict()).solver_time_truncated

    def test_certified_solve_reports_no_truncation(self):
        broker = make_broker()
        broker.submit(request("s1"))
        report = broker.advance_epoch(0)
        assert not report.solver_time_truncated
        assert not EpochReport.from_dict(report.to_dict()).solver_time_truncated
