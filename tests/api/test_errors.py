"""Error-taxonomy contract: every broker-facing failure raises a
:class:`BrokerError` subclass with a stable ``code`` attribute -- bare
``ValueError`` / ``SliceStateError`` never cross the northbound boundary."""

from __future__ import annotations

import pytest

from repro.api import (
    BrokerError,
    DuplicateSliceError,
    LifecycleError,
    SliceBroker,
    SliceRequestV1,
    SolverError,
    ValidationError,
    error_from_dict,
)
from repro.controlplane.state import SliceStateError
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators


def make_broker(solver=None) -> SliceBroker:
    return SliceBroker(
        topology=operators.testbed_topology(), solver=solver or DirectMILPSolver()
    )


def request(name: str, arrival: int = 0, duration: int = 2) -> SliceRequestV1:
    return SliceRequestV1.of(
        name, "uRLLC", duration_epochs=duration, arrival_epoch=arrival
    )


class TestStableCodes:
    def test_codes_are_stable_strings(self):
        assert BrokerError.code == "broker_error"
        assert ValidationError.code == "validation"
        assert DuplicateSliceError.code == "duplicate"
        assert LifecycleError.code == "lifecycle"
        assert SolverError.code == "solver"

    def test_every_subclass_is_a_broker_error(self):
        for cls in (ValidationError, DuplicateSliceError, LifecycleError, SolverError):
            assert issubclass(cls, BrokerError)

    def test_wire_round_trip(self):
        error = LifecycleError("no such slice", details={"slice_name": "s1"})
        rebuilt = error_from_dict(error.to_dict())
        assert type(rebuilt) is LifecycleError
        assert rebuilt.code == "lifecycle"
        assert str(rebuilt) == "no such slice"
        assert rebuilt.details == {"slice_name": "s1"}


class TestSubmissionFailures:
    def test_malformed_payload_is_validation(self):
        with pytest.raises(ValidationError) as excinfo:
            make_broker().submit({"name": "x"})
        assert excinfo.value.code == "validation"

    def test_wrong_type_is_validation(self):
        with pytest.raises(ValidationError):
            make_broker().submit(42)

    def test_duplicate_queued_name(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=5))
        with pytest.raises(DuplicateSliceError) as excinfo:
            broker.submit(request("s1", arrival=5))
        assert excinfo.value.code == "duplicate"
        assert excinfo.value.details["slice_name"] == "s1"

    def test_token_reuse_with_different_payload(self):
        broker = make_broker()
        broker.submit(request("s1", arrival=3), client_token="tok")
        with pytest.raises(DuplicateSliceError):
            broker.submit(request("s2", arrival=3), client_token="tok")

    def test_token_reuse_with_different_internal_fields(self):
        # committed/metadata are not V1 wire fields but the solver sees them:
        # the fingerprint must cover them too.
        broker = make_broker()
        base = request("s1", arrival=3).to_request()
        broker.submit(base, client_token="tok")
        with pytest.raises(DuplicateSliceError):
            broker.submit(base.as_committed(), client_token="tok")
        from dataclasses import replace

        with pytest.raises(DuplicateSliceError):
            broker.submit(
                replace(base, metadata={"preferred_compute_unit": "edge-cu"}),
                client_token="tok",
            )

    def test_live_name_resubmission_is_lifecycle(self):
        broker = make_broker()
        broker.submit(request("s1", duration=4))
        broker.advance_epoch(0)
        with pytest.raises(LifecycleError) as excinfo:
            broker.submit(request("s1", arrival=1, duration=4))
        assert excinfo.value.code == "lifecycle"

    def test_batch_failure_is_atomic_and_typed(self):
        broker = make_broker()
        with pytest.raises(DuplicateSliceError):
            broker.submit_batch(
                [request("a", arrival=2), request("b", arrival=2), request("a", arrival=2)]
            )
        assert broker.pending_count == 0

    def test_batch_token_length_mismatch_is_validation(self):
        with pytest.raises(ValidationError):
            make_broker().submit_batch([request("a")], client_tokens=["t1", "t2"])

    def test_batch_rolls_back_on_non_broker_exceptions_too(self):
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest

        broker = make_broker()
        # An in-process SliceRequest with an empty name slips past DTO
        # validation; whatever it ends up raising, atomicity must hold.
        with pytest.raises(Exception):
            broker.submit_batch(
                [request("good", arrival=2), SliceRequest(name="", template=EMBB_TEMPLATE)],
                client_tokens=["t-good", "t-bad"],
            )
        assert broker.pending_count == 0
        # The rolled-back token maps to a fresh submission again.
        broker.submit(request("good", arrival=2), client_token="t-good")
        assert broker.pending_count == 1

    def test_fingerprinting_an_invalid_core_request_is_validation(self):
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest

        broker = make_broker()
        with pytest.raises(ValidationError):
            broker.submit(
                SliceRequest(name="", template=EMBB_TEMPLATE), client_token="tok"
            )

    def test_empty_name_is_rejected_with_or_without_token(self):
        from repro.core.slices import EMBB_TEMPLATE, SliceRequest

        broker = make_broker()
        # The core SliceRequest allows an empty name; the boundary must
        # reject it identically on both the tokened and tokenless paths.
        with pytest.raises(ValidationError):
            broker.submit(SliceRequest(name="", template=EMBB_TEMPLATE))
        assert broker.pending_count == 0


class TestLifecycleFailures:
    def test_status_of_unknown_slice(self):
        with pytest.raises(LifecycleError):
            make_broker().status("ghost")

    def test_release_of_unknown_slice(self):
        with pytest.raises(LifecycleError):
            make_broker().release("ghost", epoch=0)

    def test_release_of_rejected_slice(self):
        broker = make_broker()
        # Saturate the testbed so a later identical slice gets rejected.
        broker.submit_batch([request(f"s{i}", duration=4) for i in range(8)])
        broker.advance_epoch(0)
        rejected = broker.rejected_names()
        if not rejected:  # admission capacity is a scenario detail, not the contract
            pytest.skip("testbed admitted every slice; nothing to release-reject")
        with pytest.raises(LifecycleError) as excinfo:
            broker.release(rejected[0], epoch=1)
        assert excinfo.value.code == "lifecycle"

    def test_double_release(self):
        broker = make_broker()
        broker.submit(request("s1", duration=4))
        broker.advance_epoch(0)
        broker.release("s1", epoch=1)
        with pytest.raises(LifecycleError):
            broker.release("s1", epoch=1)


class TestEpochFailures:
    def test_solver_exceptions_become_solver_errors(self):
        class ExplodingSolver:
            def solve(self, problem):
                raise RuntimeError("simplex caught fire")

        broker = make_broker(solver=ExplodingSolver())
        broker.submit(request("s1"))
        with pytest.raises(SolverError) as excinfo:
            broker.advance_epoch(0)
        assert excinfo.value.code == "solver"
        assert "simplex caught fire" in str(excinfo.value)

    def test_internal_lifecycle_errors_are_translated(self):
        broker = make_broker()
        broker.submit(request("s1", duration=4))
        broker.advance_epoch(0)
        # Smuggle an invalid renewal straight into the slice manager, past
        # broker intake, to exercise run_epoch's deferred renewal error.
        broker.orchestrator.slice_manager.submit(request("s1", arrival=1).to_request())
        with pytest.raises(LifecycleError):
            broker.advance_epoch(1)

    def test_no_bare_internal_exceptions_escape(self):
        """Every failure path above surfaces as BrokerError, so the generic
        contract holds: clients can catch BrokerError alone."""
        broker = make_broker()
        for failing_call in (
            lambda: broker.submit({"bogus": True}),
            lambda: broker.status("ghost"),
            lambda: broker.release("ghost", epoch=0),
        ):
            with pytest.raises(BrokerError):
                failing_call()
            # And never the internal exception types.
            try:
                failing_call()
            except BrokerError as error:
                assert not isinstance(error, (SliceStateError,))
                assert isinstance(error.code, str) and error.code
