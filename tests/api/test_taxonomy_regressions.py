"""Regression tests for boundary-error leaks found by `repro.analysis` (RA02).

Before the fix, *directly* constructed DTOs with bad fields raised bare
ValueError (the `of`/`from_dict` paths translated, the plain constructor
leaked) and double-starting a BrokerServer raised bare RuntimeError.  All of
these must surface as structured BrokerError subclasses with stable codes so
transports can map them to HTTP statuses.
"""

from __future__ import annotations

import pytest

from repro.api.dtos import SliceRequestV1, SliceStatus
from repro.api.errors import LifecycleError, ValidationError
from repro.api.server import BrokerServer
from repro.api.broker import SliceBroker
from repro.core.milp_solver import DirectMILPSolver
from repro.core.slices import TEMPLATES
from repro.topology import operators


@pytest.fixture(scope="module")
def template():
    return TEMPLATES["eMBB"]


class TestDirectDtoConstruction:
    """SliceRequestV1.__post_init__ guards must speak the taxonomy."""

    def test_empty_name(self, template):
        with pytest.raises(ValidationError) as excinfo:
            SliceRequestV1(name="", template=template)
        assert excinfo.value.code == "validation"

    def test_nonpositive_duration(self, template):
        with pytest.raises(ValidationError):
            SliceRequestV1(name="t", template=template, duration_epochs=0)

    def test_negative_penalty(self, template):
        with pytest.raises(ValidationError):
            SliceRequestV1(name="t", template=template, penalty_factor=-0.5)

    def test_negative_arrival(self, template):
        with pytest.raises(ValidationError):
            SliceRequestV1(name="t", template=template, arrival_epoch=-1)

    def test_bogus_status_state(self):
        with pytest.raises(ValidationError) as excinfo:
            SliceStatus(name="t", state="bogus", arrival_epoch=0, duration_epochs=1)
        assert excinfo.value.code == "validation"

    def test_valid_direct_construction_still_works(self, template):
        request = SliceRequestV1(name="t", template=template)
        assert SliceRequestV1.from_dict(request.to_dict()) == request


class TestServerDoubleStart:
    def test_double_start_is_a_lifecycle_error(self):
        broker = SliceBroker(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        server = BrokerServer(broker)
        server.start()
        try:
            with pytest.raises(LifecycleError) as excinfo:
                server.start()
            assert excinfo.value.code == "lifecycle"
            assert excinfo.value.details["url"] == server.url
        finally:
            server.stop()

    def test_restart_after_stop_is_a_lifecycle_error(self):
        """stop() closes the bound socket; a silent restart used to launch a
        serve_forever thread over the dead fd."""
        broker = SliceBroker(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        server = BrokerServer(broker)
        server.start()
        server.stop()
        with pytest.raises(LifecycleError, match="cannot be restarted"):
            server.start()

    def test_stop_is_idempotent(self):
        broker = SliceBroker(
            topology=operators.testbed_topology(), solver=DirectMILPSolver()
        )
        server = BrokerServer(broker)
        server.start()
        server.stop()
        server.stop()
