"""DTO round-trip contract: ``from_dict(to_dict(x)) == x`` for every DTO,
including through a real JSON encode/decode, with the wire format carrying an
explicit schema version."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.dtos import (
    AdmissionTicket,
    EpochReport,
    QuoteResponse,
    SliceRequestV1,
    SliceStatus,
)
from repro.api.errors import ValidationError
from repro.api.events import LifecycleEvent, LifecycleEventKind
from repro.api.wire import VERSION_KEY, WIRE_VERSION
from repro.controlplane.slice_manager import SliceDescriptor
from repro.core.slices import TEMPLATES, SliceRequest, SliceTemplate

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=12
)
positive_floats = st.floats(
    min_value=0.01, max_value=1e4, allow_nan=False, allow_infinity=False
)
non_negative_floats = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)

templates = st.one_of(
    st.sampled_from(sorted(TEMPLATES)).map(TEMPLATES.__getitem__),
    st.builds(
        SliceTemplate,
        name=names,
        reward=positive_floats,
        latency_tolerance_ms=positive_floats,
        sla_mbps=positive_floats,
        compute_baseline_cpus=non_negative_floats,
        compute_cpus_per_mbps=non_negative_floats,
        default_relative_std=st.floats(
            min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
        ),
    ),
)

requests_v1 = st.builds(
    SliceRequestV1,
    name=names,
    template=templates,
    duration_epochs=st.integers(min_value=1, max_value=200),
    penalty_factor=non_negative_floats,
    arrival_epoch=st.integers(min_value=0, max_value=500),
)

descriptors = st.builds(
    SliceDescriptor,
    slice_name=names,
    slice_type=names,
    sla_mbps=positive_floats,
    latency_tolerance_ms=positive_floats,
    duration_epochs=st.integers(min_value=1, max_value=200),
    compute_model=st.fixed_dictionaries(
        {"baseline_cpus": non_negative_floats, "cpus_per_mbps": non_negative_floats}
    ),
    reward=positive_floats,
    penalty_factor=non_negative_floats,
)

tickets = st.builds(
    AdmissionTicket,
    ticket_id=names,
    slice_name=names,
    arrival_epoch=st.integers(min_value=0, max_value=500),
    descriptor=descriptors,
    client_token=st.one_of(st.none(), names),
)

statuses = st.builds(
    SliceStatus,
    name=names,
    state=st.sampled_from(
        ("queued", "requested", "admitted", "rejected", "expired", "released")
    ),
    arrival_epoch=st.integers(min_value=0, max_value=500),
    duration_epochs=st.integers(min_value=1, max_value=200),
    admitted_epoch=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
    expires_at=st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
    compute_unit=st.one_of(st.none(), names),
    reservations_mbps=st.dictionaries(names, non_negative_floats, max_size=4),
    renewal_count=st.integers(min_value=0, max_value=5),
)

quotes = st.builds(
    QuoteResponse,
    slice_name=names,
    slice_type=names,
    sla_mbps=positive_floats,
    forecast_peak_mbps=non_negative_floats,
    forecast_sigma=st.floats(
        min_value=0.001, max_value=1.0, allow_nan=False, allow_infinity=False
    ),
    reward_per_epoch=positive_floats,
    penalty_rate_per_mbps=non_negative_floats,
)

events = st.builds(
    LifecycleEvent,
    kind=st.sampled_from(list(LifecycleEventKind)),
    slice_name=names,
    epoch=st.integers(min_value=0, max_value=500),
    metadata=st.dictionaries(
        names,
        st.one_of(st.none(), st.integers(-100, 100), non_negative_floats, names),
        max_size=3,
    ),
)

name_tuples = st.lists(names, max_size=4, unique=True).map(tuple)

reports = st.builds(
    EpochReport,
    epoch=st.integers(min_value=0, max_value=500),
    idle=st.booleans(),
    objective_value=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    accepted=name_tuples,
    rejected=name_tuples,
    expired=name_tuples,
    renewed=name_tuples,
    active=name_tuples,
    pending_requests=st.integers(min_value=0, max_value=50),
    solver=names,
    solver_iterations=st.integers(min_value=0, max_value=1000),
    solver_runtime_s=non_negative_floats,
    solver_optimal=st.booleans(),
    solver_warm_cuts=st.integers(min_value=0, max_value=1000),
    solver_message=st.text(max_size=40),
    solver_time_truncated=st.booleans(),
    events=st.lists(events, max_size=3).map(tuple),
    degraded=st.booleans(),
    solver_tier=st.sampled_from(
        ["primary", "warm_replay", "no_overbooking", "reject_all"]
    ),
    solver_retries=st.integers(min_value=0, max_value=5),
    health=st.sampled_from(["healthy", "degraded", "safe_mode"]),
    degraded_reasons=st.lists(st.text(max_size=30), max_size=3).map(tuple),
    rehomed=name_tuples,
)

ALL_DTOS = [
    ("SliceRequestV1", requests_v1, SliceRequestV1),
    ("AdmissionTicket", tickets, AdmissionTicket),
    ("SliceStatus", statuses, SliceStatus),
    ("QuoteResponse", quotes, QuoteResponse),
    ("LifecycleEvent", events, LifecycleEvent),
    ("EpochReport", reports, EpochReport),
]


# --------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name,strategy,cls", ALL_DTOS, ids=lambda p: str(p)[:20])
def test_round_trip_through_json(name, strategy, cls):
    @settings(max_examples=60, deadline=None)
    @given(strategy)
    def check(dto):
        payload = dto.to_dict()
        assert payload[VERSION_KEY] == WIRE_VERSION
        rebuilt = cls.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == dto

    check()


SAMPLE_DTOS = [
    SliceRequestV1.of("s1", "eMBB", duration_epochs=3),
    AdmissionTicket(
        ticket_id="tkt-000001",
        slice_name="s1",
        arrival_epoch=0,
        descriptor=SliceDescriptor.from_request(
            SliceRequest(name="s1", template=TEMPLATES["eMBB"])
        ),
    ),
    SliceStatus(name="s1", state="admitted", arrival_epoch=0, duration_epochs=3),
    QuoteResponse(
        slice_name="s1",
        slice_type="eMBB",
        sla_mbps=50.0,
        forecast_peak_mbps=20.0,
        forecast_sigma=0.3,
        reward_per_epoch=1.0,
        penalty_rate_per_mbps=0.02,
    ),
    LifecycleEvent(LifecycleEventKind.ADMITTED, "s1", epoch=0),
    EpochReport(epoch=0, idle=False, objective_value=-1.5, accepted=("s1",)),
]


@pytest.mark.parametrize("dto", SAMPLE_DTOS, ids=lambda d: type(d).__name__)
def test_dtos_are_hashable_values(dto):
    # Dict-valued fields are excluded from __hash__, so clients can put any
    # DTO in a set (e.g. a subscriber deduplicating its event stream).
    assert len({dto, dto}) == 1


@pytest.mark.parametrize("dto", SAMPLE_DTOS, ids=lambda d: type(d).__name__)
def test_version_mismatch_is_rejected(dto):
    cls = type(dto)
    payload = dto.to_dict()
    payload[VERSION_KEY] = WIRE_VERSION + 1
    with pytest.raises(ValidationError):
        cls.from_dict(payload)
    del payload[VERSION_KEY]
    with pytest.raises(ValidationError):
        cls.from_dict(payload)


# --------------------------------------------------------------------- #
# Conversions and validation details
# --------------------------------------------------------------------- #
class TestSliceRequestV1:
    def test_catalogue_constructor_and_core_round_trip(self):
        dto = SliceRequestV1.of("s1", "uRLLC", duration_epochs=5, arrival_epoch=2)
        request = dto.to_request()
        assert isinstance(request, SliceRequest)
        assert request.template is TEMPLATES["uRLLC"]
        assert SliceRequestV1.from_request(request) == dto

    def test_unknown_catalogue_type(self):
        with pytest.raises(ValidationError) as excinfo:
            SliceRequestV1.of("s1", "holographic")
        assert excinfo.value.code == "validation"
        assert "holographic" in str(excinfo.value)

    def test_domain_violations_become_validation_errors(self):
        payload = SliceRequestV1.of("s1", "eMBB").to_dict()
        payload["duration_epochs"] = 0
        with pytest.raises(ValidationError):
            SliceRequestV1.from_dict(payload)
        payload = SliceRequestV1.of("s1", "eMBB").to_dict()
        payload["template"]["sla_mbps"] = -3.0
        with pytest.raises(ValidationError):
            SliceRequestV1.from_dict(payload)

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(ValidationError):
            SliceRequestV1.from_dict("not a mapping")


class TestMalformedPayloadsStayStructured:
    """Wrong-shaped field values must raise ValidationError, never leak the
    underlying TypeError/ValueError/AttributeError to a transport shim."""

    def test_lifecycle_event_bad_epoch(self):
        payload = LifecycleEvent(LifecycleEventKind.ADMITTED, "a", 0).to_dict()
        payload["epoch"] = "not-an-int"
        with pytest.raises(ValidationError):
            LifecycleEvent.from_dict(payload)

    def test_slice_status_scalar_reservations(self):
        payload = SliceStatus(
            name="a", state="admitted", arrival_epoch=0, duration_epochs=1
        ).to_dict()
        payload["reservations_mbps"] = 5
        with pytest.raises(ValidationError):
            SliceStatus.from_dict(payload)

    def test_epoch_report_string_name_list_is_rejected(self):
        payload = EpochReport(epoch=0, idle=True, objective_value=0.0).to_dict()
        payload["accepted"] = "ab"  # would silently explode into ('a', 'b')
        with pytest.raises(ValidationError):
            EpochReport.from_dict(payload)

    def test_epoch_report_scalar_events(self):
        payload = EpochReport(epoch=0, idle=True, objective_value=0.0).to_dict()
        payload["events"] = 5
        with pytest.raises(ValidationError):
            EpochReport.from_dict(payload)

    def test_epoch_report_malformed_nested_event(self):
        payload = EpochReport(epoch=0, idle=True, objective_value=0.0).to_dict()
        payload["events"] = [{"schema_version": 1, "kind": "admitted", "slice_name": "a", "epoch": "x"}]
        with pytest.raises(ValidationError):
            EpochReport.from_dict(payload)


class TestSliceDescriptorRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(descriptors)
    def test_from_dict_inverts_as_dict(self, descriptor):
        assert SliceDescriptor.from_dict(descriptor.as_dict()) == descriptor

    def test_missing_field_is_a_value_error(self):
        payload = SliceDescriptor.from_request(
            SliceRequest(name="s", template=TEMPLATES["eMBB"])
        ).as_dict()
        del payload["sla_mbps"]
        with pytest.raises(ValueError, match="sla_mbps"):
            SliceDescriptor.from_dict(payload)


class TestEpochReportDegradationFields:
    def test_degradation_fields_round_trip_through_json(self):
        report = EpochReport(
            epoch=3,
            idle=False,
            objective_value=1.5,
            degraded=True,
            solver_tier="no_overbooking",
            solver_retries=2,
            health="safe_mode",
            degraded_reasons=("solver tier no_overbooking: injected",),
            rehomed=("s1", "s2"),
        )
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = EpochReport.from_dict(payload)
        assert rebuilt == report
        assert payload["degraded"] is True
        assert payload["solver_tier"] == "no_overbooking"
        assert payload["rehomed"] == ["s1", "s2"]

    def test_pre_chaos_payloads_default_to_healthy(self):
        # Reports serialised before the chaos layer existed lack the
        # degradation keys; deserialisation must fill in the clean defaults.
        report = EpochReport(epoch=0, idle=True, objective_value=0.0)
        payload = report.to_dict()
        for key in (
            "degraded",
            "solver_tier",
            "solver_retries",
            "health",
            "degraded_reasons",
            "rehomed",
        ):
            del payload[key]
        rebuilt = EpochReport.from_dict(payload)
        assert rebuilt.degraded is False
        assert rebuilt.solver_tier == "primary"
        assert rebuilt.solver_retries == 0
        assert rebuilt.health == "healthy"
        assert rebuilt.degraded_reasons == ()
        assert rebuilt.rehomed == ()
