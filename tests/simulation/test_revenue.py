"""Tests for revenue accounting and SLA-violation statistics."""

import numpy as np
import pytest

from repro.core.slices import EMBB_TEMPLATE, SliceRequest
from repro.simulation.revenue import RevenueAccountant


def request(name="s", duration=10, penalty=1.0):
    return SliceRequest(
        name=name, template=EMBB_TEMPLATE, duration_epochs=duration, penalty_factor=penalty
    )


class TestRewardAccrual:
    def test_reward_spread_over_lifetime(self):
        accountant = RevenueAccountant(num_base_stations=2)
        slice_request = request(duration=10)
        for epoch in range(10):
            accountant.record_epoch(epoch, [slice_request], {}, {})
        assert accountant.report.total_reward == pytest.approx(slice_request.reward)
        assert accountant.report.net_revenue == pytest.approx(slice_request.reward)

    def test_no_active_slices_no_revenue(self):
        accountant = RevenueAccountant(num_base_stations=2)
        revenue = accountant.record_epoch(0, [], {}, {})
        assert revenue.net == 0.0
        assert revenue.active_slices == 0


class TestPenalties:
    def test_persistent_ten_percent_shortfall_costs_ten_percent(self):
        slice_request = request(duration=10, penalty=1.0)
        accountant = RevenueAccountant(num_base_stations=2)
        shortfall = 0.1 * slice_request.sla_mbps
        offered = {("s", "bs-0"): np.full(4, 30.0), ("s", "bs-1"): np.full(4, 30.0)}
        unserved = {
            ("s", "bs-0"): np.full(4, shortfall),
            ("s", "bs-1"): np.full(4, shortfall),
        }
        for epoch in range(10):
            accountant.record_epoch(epoch, [slice_request], offered, unserved)
        report = accountant.report
        assert report.total_penalty == pytest.approx(0.1 * slice_request.reward)
        assert report.net_revenue == pytest.approx(0.9 * slice_request.reward)

    def test_penalty_scales_with_penalty_factor(self):
        offered = {("s", "bs-0"): np.full(2, 30.0)}
        unserved = {("s", "bs-0"): np.full(2, 5.0)}
        penalties = {}
        for m in (1.0, 4.0):
            accountant = RevenueAccountant(num_base_stations=1)
            accountant.record_epoch(0, [request(penalty=m)], offered, unserved)
            penalties[m] = accountant.report.total_penalty
        assert penalties[4.0] == pytest.approx(4.0 * penalties[1.0])

    def test_no_unserved_traffic_no_penalty(self):
        accountant = RevenueAccountant(num_base_stations=1)
        offered = {("s", "bs-0"): np.full(4, 30.0)}
        accountant.record_epoch(0, [request()], offered, {})
        assert accountant.report.total_penalty == 0.0


class TestViolationStatistics:
    def test_probability_counts_samples(self):
        accountant = RevenueAccountant(num_base_stations=1)
        offered = {("s", "bs-0"): np.array([10.0, 10.0, 10.0, 10.0])}
        unserved = {("s", "bs-0"): np.array([0.0, 2.0, 0.0, 0.0])}
        accountant.record_epoch(0, [request()], offered, unserved)
        report = accountant.report
        assert report.total_samples == 4
        assert report.violated_samples == 1
        assert report.violation_probability == pytest.approx(0.25)
        assert report.mean_drop_fraction == pytest.approx(0.2)
        assert report.max_drop_fraction == pytest.approx(0.2)

    def test_summary_keys(self):
        accountant = RevenueAccountant(num_base_stations=1)
        accountant.record_epoch(0, [request()], {}, {})
        assert set(accountant.report.summary()) == {
            "net_revenue",
            "total_reward",
            "total_penalty",
            "violation_probability",
            "mean_drop_fraction",
            "max_drop_fraction",
            "epochs",
        }

    def test_invalid_num_base_stations(self):
        with pytest.raises(ValueError):
            RevenueAccountant(num_base_stations=0)
