"""Tests for the simulation engine and policy runner."""

import pytest

from repro.core.slices import EMBB_TEMPLATE
from repro.simulation.runner import compare_policies, make_solver, relative_revenue_gain, run_scenario
from repro.simulation.scenario import homogeneous_scenario, testbed_scenario as make_testbed_scenario
from repro.simulation.engine import SimulationEngine
from tests.conftest import build_tiny_topology


@pytest.fixture(scope="module")
def small_scenario():
    return homogeneous_scenario(
        build_tiny_topology(num_base_stations=2),
        EMBB_TEMPLATE,
        num_tenants=6,
        mean_load_fraction=0.2,
        relative_std=0.25,
        num_epochs=3,
        seed=1,
    )


class TestMakeSolver:
    @pytest.mark.parametrize("policy", ["optimal", "benders", "kac", "no-overbooking"])
    def test_known_policies(self, policy):
        assert make_solver(policy) is not None

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            make_solver("magic")


class TestSimulationRun:
    def test_overbooking_beats_baseline(self, small_scenario):
        results = compare_policies(small_scenario, policies=("optimal", "no-overbooking"))
        optimal, baseline = results["optimal"], results["no-overbooking"]
        assert optimal.num_admitted > baseline.num_admitted
        assert optimal.net_revenue > baseline.net_revenue
        assert relative_revenue_gain(optimal, baseline) > 0.0

    def test_epoch_records_and_revenue_series(self, small_scenario):
        result = run_scenario(small_scenario, policy="optimal")
        assert len(result.epoch_records) == small_scenario.num_epochs
        assert result.per_epoch_net_revenue.shape == (small_scenario.num_epochs,)
        assert result.summary()["num_admitted"] == result.num_admitted

    def test_reproducible_given_seed(self, small_scenario):
        a = run_scenario(small_scenario, policy="optimal")
        b = run_scenario(small_scenario, policy="optimal")
        assert a.net_revenue == pytest.approx(b.net_revenue)
        assert a.final_admitted == b.final_admitted

    def test_violations_are_rare_at_low_load(self, small_scenario):
        result = run_scenario(small_scenario, policy="optimal")
        # The paper's headline claim: overbooking has a negligible footprint.
        assert result.violation_probability < 0.01

    def test_kac_policy_runs(self, small_scenario):
        result = run_scenario(small_scenario, policy="kac")
        assert result.num_admitted >= 1


class TestOnlineMode:
    def test_testbed_scenario_admits_over_time(self):
        scenario = make_testbed_scenario(num_epochs=6, seed=2)
        result = run_scenario(scenario, policy="optimal")
        # At least the first uRLLC slice is admitted, and admissions never
        # exceed the number of requests that have arrived (epoch 4 -> 3 reqs).
        assert "uRLLC1" in result.final_admitted
        assert 1 <= result.num_admitted <= 3

    def test_usage_recorded_when_requested(self):
        scenario = make_testbed_scenario(num_epochs=4, seed=2)
        result = run_scenario(scenario, policy="optimal")
        record = result.epoch_records[1]
        assert record.radio_usage and record.compute_usage and record.transport_usage


class TestConvergenceStopping:
    def test_early_stop_on_converged_revenue(self):
        scenario = homogeneous_scenario(
            build_tiny_topology(num_base_stations=2),
            EMBB_TEMPLATE,
            num_tenants=4,
            mean_load_fraction=0.2,
            relative_std=0.0,
            num_epochs=30,
            seed=3,
        )
        engine = SimulationEngine(scenario, make_solver("optimal"), policy_name="optimal")
        result = engine.run(
            stop_on_converged_revenue=True, min_epochs_for_convergence=5
        )
        assert len(result.epoch_records) < 30


class TestOracleForecasts:
    def test_oracle_overrides_populated(self, small_scenario):
        engine = SimulationEngine(small_scenario, make_solver("optimal"))
        overrides = engine.orchestrator.forecast_overrides
        assert set(overrides) == {w.name for w in small_scenario.workloads}
        for workload in small_scenario.workloads:
            forecast = overrides[workload.name]
            mean = workload.demand.mean_fraction * workload.request.sla_mbps
            assert forecast.lambda_hat_mbps >= mean  # peak >= mean
            assert forecast.lambda_hat_mbps < workload.request.sla_mbps
