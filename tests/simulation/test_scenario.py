"""Tests for scenario construction (Fig. 5 / Fig. 6 / Fig. 8 set-ups)."""

import pytest

from repro.core.slices import EMBB_TEMPLATE, MMTC_TEMPLATE
from repro.simulation.scenario import (
    Scenario,
    SliceWorkload,
    heterogeneous_scenario,
    homogeneous_scenario,
    testbed_scenario as make_testbed_scenario,
)
from repro.traffic.patterns import DemandSpec
from tests.conftest import build_tiny_topology


class TestScenarioValidation:
    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            Scenario(name="empty", topology=build_tiny_topology(), workloads=())

    def test_unique_names_required(self):
        workload = SliceWorkload(
            request=__import__("repro.core.slices", fromlist=["SliceRequest"]).SliceRequest(
                name="dup", template=EMBB_TEMPLATE
            ),
            demand=DemandSpec(),
        )
        with pytest.raises(ValueError):
            Scenario(
                name="dup", topology=build_tiny_topology(), workloads=(workload, workload)
            )

    def test_forecast_mode_validated(self):
        workload = SliceWorkload(
            request=__import__("repro.core.slices", fromlist=["SliceRequest"]).SliceRequest(
                name="a", template=EMBB_TEMPLATE
            ),
            demand=DemandSpec(),
        )
        with pytest.raises(ValueError):
            Scenario(
                name="x",
                topology=build_tiny_topology(),
                workloads=(workload,),
                forecast_mode="psychic",
            )


class TestHomogeneousScenario:
    def test_tenant_count_and_template(self):
        scenario = homogeneous_scenario(
            "romanian",
            EMBB_TEMPLATE,
            num_tenants=5,
            mean_load_fraction=0.3,
            num_base_stations=6,
            seed=1,
        )
        assert len(scenario.workloads) == 5
        assert all(w.request.template is EMBB_TEMPLATE for w in scenario.workloads)
        assert all(w.demand.mean_fraction == 0.3 for w in scenario.workloads)
        assert scenario.forecast_mode == "oracle"

    def test_accepts_prebuilt_topology(self, tiny_topology):
        scenario = homogeneous_scenario(
            tiny_topology, EMBB_TEMPLATE, num_tenants=2, mean_load_fraction=0.5
        )
        assert scenario.topology is tiny_topology

    def test_unknown_operator_rejected(self):
        with pytest.raises(KeyError):
            homogeneous_scenario("atlantis", EMBB_TEMPLATE, 2, 0.5)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            homogeneous_scenario("romanian", EMBB_TEMPLATE, 2, 1.5, num_base_stations=4)


class TestHeterogeneousScenario:
    def test_beta_split(self):
        scenario = heterogeneous_scenario(
            "romanian",
            EMBB_TEMPLATE,
            MMTC_TEMPLATE,
            num_tenants=8,
            fraction_b=0.25,
            num_base_stations=6,
            seed=1,
        )
        types = [w.request.template.name for w in scenario.workloads]
        assert types.count("mMTC") == 2
        assert types.count("eMBB") == 6

    @pytest.mark.parametrize("beta,expected_b", [(0.0, 0), (1.0, 6)])
    def test_beta_extremes(self, beta, expected_b):
        scenario = heterogeneous_scenario(
            "romanian",
            EMBB_TEMPLATE,
            MMTC_TEMPLATE,
            num_tenants=6,
            fraction_b=beta,
            num_base_stations=6,
            seed=1,
        )
        types = [w.request.template.name for w in scenario.workloads]
        assert types.count("mMTC") == expected_b


class TestTestbedScenario:
    def test_arrival_schedule(self):
        scenario = make_testbed_scenario()
        assert len(scenario.workloads) == 9
        arrivals = {w.name: w.request.arrival_epoch for w in scenario.workloads}
        assert arrivals["uRLLC1"] == 0
        assert arrivals["mMTC1"] == 6
        assert arrivals["eMBB3"] == 16
        assert scenario.forecast_mode == "online"
        assert scenario.record_usage

    def test_demand_parameters(self):
        scenario = make_testbed_scenario()
        for workload in scenario.workloads:
            assert workload.demand.mean_fraction == 0.5
            assert workload.demand.relative_std == 0.1
