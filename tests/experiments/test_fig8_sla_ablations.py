"""Tests for the Fig. 8 testbed experiment, SLA statistics and ablations."""

import pytest

from repro.experiments.ablations import run_forecaster_ablation, run_solver_ablation
from repro.experiments.fig8_testbed import TESTBED_CONFIG, run_fig8
from repro.experiments.sla_violations import run_sla_violations


class TestFig8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return run_fig8(policies=("optimal", "no-overbooking"), num_epochs=10, seed=3)

    def test_policies_present(self, fig8):
        assert set(fig8.policies()) == {"optimal", "no-overbooking"}

    def test_overbooking_revenue_at_least_baseline(self, fig8):
        assert fig8.final_revenue("optimal") >= fig8.final_revenue("no-overbooking") - 1e-9

    def test_cumulative_revenue_monotone(self, fig8):
        series = fig8.cumulative_revenue("optimal")
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))

    def test_revenue_timeline_starts_at_6am(self, fig8):
        timeline = fig8.revenue_timeline("optimal")
        assert timeline[0][0] == "06:00"
        assert len(timeline) == 10

    def test_domain_timeline_shapes(self, fig8):
        radio = fig8.domain_timeline("optimal", "radio")
        assert set(radio) == {"bs-0", "bs-1"}
        compute = fig8.domain_timeline("optimal", "compute")
        assert set(compute) == {"edge-cu", "core-cu"}
        with pytest.raises(ValueError):
            fig8.domain_timeline("optimal", "spectrum")

    def test_overbooking_admits_at_least_as_many(self, fig8):
        assert len(fig8.admitted("optimal")) >= len(fig8.admitted("no-overbooking"))

    def test_testbed_config_documents_table2(self):
        assert len(TESTBED_CONFIG) == 5


class TestSlaViolations:
    def test_violations_negligible(self):
        results = run_sla_violations(
            num_base_stations=4, num_tenants=6, num_epochs=4, seed=5
        )
        assert len(results) == 2
        for result in results:
            # The paper reports <0.0001% and 0.043%; the reproduction target
            # is "negligible", i.e. well below 1% of samples.
            assert result.violation_probability < 0.01
            assert 0.0 <= result.mean_drop_fraction <= 1.0


class TestSolverAblation:
    def test_rows_and_optimality(self):
        rows = run_solver_ablation(sizes=((3, 3),), solvers=("optimal", "kac"), seed=1)
        assert len(rows) == 2
        by_solver = {row.solver: row for row in rows}
        assert by_solver["optimal"].optimality_gap_percent == pytest.approx(0.0, abs=1e-6)
        assert by_solver["kac"].optimality_gap_percent >= 0.0
        assert by_solver["kac"].num_items == by_solver["optimal"].num_items


class TestForecasterAblation:
    def test_rows_cover_requested_forecasters(self):
        rows = run_forecaster_ablation(
            forecasters=("holt-winters", "naive"),
            num_tenants=3,
            num_base_stations=2,
            num_days=2,
            epochs_per_day=6,
            seed=2,
        )
        assert {row.forecaster for row in rows} == {"holt-winters", "naive"}
        for row in rows:
            assert row.net_revenue >= 0.0
            assert 0.0 <= row.violation_probability <= 1.0
