"""Golden-run regression harness.

Small seeded reference summaries for one homogeneous, one heterogeneous and
one testbed scenario, each run under every orchestration policy, are
committed under ``tests/golden/``.  Fresh runs must match them to tight
tolerance: any drift in the solver layer, the data plane or the revenue
accounting shows up here *before* a figure visibly moves, which is the
safety net future solver/data-plane PRs rely on.

The reference files pin, per (scenario, policy):

* the spec's content hash (``run_id``) -- so accidental changes to spec
  hashing or scenario parameters fail loudly;
* the flat numeric summary (net revenue, violation statistics, admissions);
* the per-epoch net-revenue series and the admission outcome.

Seeded runs are bit-stable across processes (``derive_seed`` is CRC32-based,
demand flows through seeded ``numpy`` generators, HiGHS is deterministic),
so the comparisons use a tight relative tolerance that only leaves room for
cross-platform floating-point noise.

To regenerate after an *intentional* behaviour change::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/experiments/test_golden_runs.py

and commit the refreshed JSON together with the change that caused it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.campaign import RunSpec, execute_spec
from repro.simulation.runner import POLICIES

pytestmark = pytest.mark.golden

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
UPDATE_ENV = "REPRO_UPDATE_GOLDEN"

#: Relative tolerance for float comparisons (identical platforms reproduce
#: bit-for-bit; this only absorbs cross-platform libm/BLAS noise).
REL_TOL = 1e-9
ABS_TOL = 1e-12

#: The three pinned scenarios; every orchestration policy runs each one.
GOLDEN_SCENARIOS = {
    "homogeneous": {
        "seed": 17,
        "params": {
            "scenario": "homogeneous",
            "operator": "romanian",
            "slice_type": "eMBB",
            "alpha": 0.3,
            "relative_std": 0.25,
            "penalty_factor": 1.0,
            "num_tenants": 5,
            "num_epochs": 3,
            "num_base_stations": 3,
        },
    },
    "heterogeneous": {
        "seed": 23,
        "params": {
            "scenario": "heterogeneous",
            "operator": "romanian",
            "slice_type_a": "eMBB",
            "slice_type_b": "uRLLC",
            "beta": 0.4,
            "mean_load_fraction": 0.2,
            "relative_std": 0.25,
            "penalty_factor": 1.0,
            "num_tenants": 5,
            "num_epochs": 3,
            "num_base_stations": 3,
        },
    },
    "testbed": {
        "seed": 3,
        "params": {"scenario": "testbed", "num_epochs": 8},
    },
}


def golden_spec(scenario: str, policy: str) -> RunSpec:
    config = GOLDEN_SCENARIOS[scenario]
    return RunSpec(
        experiment="golden",
        kind="simulation",
        params=config["params"],
        policy=policy,
        seed=config["seed"],
    )


def golden_path(scenario: str) -> Path:
    return GOLDEN_DIR / f"{scenario}.json"


def reference_entry(spec: RunSpec) -> dict:
    """What a golden file pins for one (scenario, policy) run."""
    record = execute_spec(spec)
    return {
        "run_id": spec.run_id,
        "summary": dict(record.summary),
        "per_epoch_net": list(record.extras["per_epoch_net"]),
        "final_admitted": list(record.extras["final_admitted"]),
        "final_rejected": list(record.extras["final_rejected"]),
    }


def _regenerate(scenario: str) -> dict:
    payload = {
        "schema": 1,
        "scenario": scenario,
        "seed": GOLDEN_SCENARIOS[scenario]["seed"],
        "params": GOLDEN_SCENARIOS[scenario]["params"],
        "policies": {
            policy: reference_entry(golden_spec(scenario, policy))
            for policy in POLICIES
        },
    }
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    golden_path(scenario).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def load_golden(scenario: str) -> dict:
    path = golden_path(scenario)
    if os.environ.get(UPDATE_ENV):
        return _regenerate(scenario)
    if not path.exists():
        pytest.fail(
            f"missing golden file {path}; run with {UPDATE_ENV}=1 to create it"
        )
    return json.loads(path.read_text())


@pytest.fixture(scope="module", params=sorted(GOLDEN_SCENARIOS))
def golden_case(request):
    return request.param, load_golden(request.param)


class TestGoldenRuns:
    def test_covers_every_policy(self, golden_case):
        _, golden = golden_case
        assert set(golden["policies"]) == set(POLICIES)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_fresh_run_matches_reference(self, golden_case, policy):
        scenario, golden = golden_case
        spec = golden_spec(scenario, policy)
        reference = golden["policies"][policy]

        # Spec hashing must be stable: a drifting run_id means the scenario
        # parameters or the hash itself changed, which invalidates the cache.
        assert spec.run_id == reference["run_id"], (
            f"golden spec hash for {scenario}/{policy} drifted; regenerate "
            f"tests/golden/ if the change is intentional"
        )

        fresh = reference_entry(spec)
        assert fresh["final_admitted"] == reference["final_admitted"]
        assert fresh["final_rejected"] == reference["final_rejected"]
        assert fresh["per_epoch_net"] == pytest.approx(
            reference["per_epoch_net"], rel=REL_TOL, abs=ABS_TOL
        )
        assert set(fresh["summary"]) == set(reference["summary"])
        for key, expected in reference["summary"].items():
            assert fresh["summary"][key] == pytest.approx(
                expected, rel=REL_TOL, abs=ABS_TOL
            ), f"{scenario}/{policy}: summary[{key!r}] drifted"

    def test_overbooking_beats_baseline_in_reference(self, golden_case):
        # Sanity on the committed numbers themselves: the pinned references
        # must show the paper's headline effect, not a degenerate run.
        _, golden = golden_case
        baseline = golden["policies"]["no-overbooking"]["summary"]["net_revenue"]
        optimal = golden["policies"]["optimal"]["summary"]["net_revenue"]
        assert optimal >= baseline - 1e-9
