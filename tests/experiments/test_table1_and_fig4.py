"""Tests for the Table 1 and Fig. 4 reproductions."""

from repro.experiments.fig4_topologies import path_statistics, run_fig4
from repro.experiments.table1_templates import format_table1, table1_rows
from repro.topology.operators import romanian_topology


class TestTable1:
    def test_rows_cover_all_templates(self):
        rows = table1_rows()
        assert {row["slice_type"] for row in rows} == {"eMBB", "mMTC", "uRLLC"}

    def test_row_values_match_paper(self):
        by_type = {row["slice_type"]: row for row in table1_rows()}
        assert by_type["eMBB"]["sla_mbps"] == 50.0
        assert by_type["mMTC"]["sigma"] == "0"
        assert by_type["uRLLC"]["latency_tolerance_ms"] == 5.0
        assert by_type["mMTC"]["compute_cpus_per_mbps"] == 2.0

    def test_format_renders_every_row(self):
        text = format_table1()
        for name in ("eMBB", "mMTC", "uRLLC"):
            assert name in text


class TestFig4:
    def test_reduced_run_contains_all_operators(self):
        result = run_fig4(num_base_stations=12, k_paths=4, seed=1)
        assert set(result.operators) == {"romanian", "swiss", "italian"}
        rows = result.rows()
        assert len(rows) == 3
        for row in rows:
            assert row["mean_paths_per_pair"] >= 1.0

    def test_romanian_more_redundant_than_italian(self):
        result = run_fig4(num_base_stations=16, k_paths=6, seed=2)
        assert (
            result.operators["romanian"].mean_paths_per_pair
            > result.operators["italian"].mean_paths_per_pair
        )

    def test_swiss_paths_have_lower_capacity(self):
        result = run_fig4(num_base_stations=16, k_paths=4, seed=2)
        swiss = result.operators["swiss"].capacity_cdf_gbps.quantile(0.5)
        romanian = result.operators["romanian"].capacity_cdf_gbps.quantile(0.5)
        assert swiss < romanian

    def test_path_statistics_requires_edge_reachability(self, tiny_topology):
        stats = path_statistics("tiny", tiny_topology)
        assert stats.num_base_stations == 2
        assert stats.mean_paths_per_pair >= 1.0

    def test_delay_distribution_is_positive(self):
        topo = romanian_topology(num_base_stations=10, seed=3)
        stats = path_statistics("romanian", topo, k_paths=3)
        assert stats.delay_cdf_us.quantile(0.0) > 0.0
