"""Tests for the campaign layer: specs, hashing, caching, resumability, CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro.experiments.campaign import (
    Campaign,
    RunRecord,
    RunSpec,
    RunStore,
    build_scenario,
    execute_spec,
    expand_grid,
    register_run_kind,
)
from repro.experiments.cli import main as cli_main
from repro.utils.executors import (
    ProcessPoolRunExecutor,
    SerialExecutor,
    default_executor,
    resolve_executor,
)
from repro.utils.rng import derive_spec_seed, spec_hash


@register_run_kind("flaky-test-kind")
def _flaky_run_kind(spec: RunSpec) -> dict:
    if spec.params["boom"]:
        raise RuntimeError("boom")
    return {"summary": {"ok": 1.0}}


def tiny_sim_spec(policy="optimal", alpha=0.3, seed=1, **overrides) -> RunSpec:
    params = {
        "scenario": "homogeneous",
        "operator": "romanian",
        "slice_type": "eMBB",
        "alpha": alpha,
        "relative_std": 0.25,
        "penalty_factor": 1.0,
        "num_tenants": 3,
        "num_epochs": 2,
        "num_base_stations": 2,
    }
    params.update(overrides)
    return RunSpec(
        experiment="test", kind="simulation", params=params, policy=policy, seed=seed
    )


class TestSpecHashing:
    def test_hash_is_stable_and_content_addressed(self):
        spec = tiny_sim_spec()
        same = tiny_sim_spec()
        assert spec.run_id == same.run_id
        assert len(spec.run_id) == 64  # sha256 hex

    def test_hash_depends_on_params_policy_seed_and_stop_flag(self):
        base = tiny_sim_spec()
        assert tiny_sim_spec(alpha=0.4).run_id != base.run_id
        assert tiny_sim_spec(policy="kac").run_id != base.run_id
        assert tiny_sim_spec(seed=2).run_id != base.run_id
        stopped = RunSpec(
            **{**base.as_dict(), "stop_on_converged_revenue": True}
        )
        assert stopped.run_id != base.run_id

    def test_tuple_and_list_params_hash_identically(self):
        assert spec_hash({"a": (1, 2)}) == spec_hash({"a": [1, 2]})

    def test_key_order_is_irrelevant(self):
        assert spec_hash({"a": 1, "b": 2}) == spec_hash({"b": 2, "a": 1})

    def test_unhashable_values_raise(self):
        with pytest.raises(TypeError):
            spec_hash({"a": object()})

    def test_scenario_identity_excludes_policy_and_stop_rule(self):
        optimal = tiny_sim_spec(policy="optimal")
        baseline = tiny_sim_spec(policy="no-overbooking")
        assert optimal.scenario_identity() == baseline.scenario_identity()

    def test_derived_seeds_pair_policies_but_separate_grid_points(self):
        optimal = tiny_sim_spec(policy="optimal")
        baseline = tiny_sim_spec(policy="no-overbooking")
        other_point = tiny_sim_spec(alpha=0.6)
        seed_a = derive_spec_seed(99, optimal.scenario_identity())
        seed_b = derive_spec_seed(99, baseline.scenario_identity())
        seed_c = derive_spec_seed(99, other_point.scenario_identity())
        assert seed_a == seed_b
        assert seed_a != seed_c

    def test_campaign_resolves_none_seeds_from_base_seed(self):
        specs = (
            RunSpec(
                experiment="test",
                kind="simulation",
                params=tiny_sim_spec().params,
                policy="optimal",
            ),
            RunSpec(
                experiment="test",
                kind="simulation",
                params=tiny_sim_spec().params,
                policy="no-overbooking",
            ),
        )
        campaign = Campaign(name="test", specs=specs, base_seed=42)
        resolved = campaign.resolved_specs()
        assert resolved[0].seed is not None
        assert resolved[0].seed == resolved[1].seed  # paired comparison

    def test_duplicate_specs_rejected(self):
        spec = tiny_sim_spec()
        with pytest.raises(ValueError, match="duplicate"):
            Campaign(name="dup", specs=(spec, spec))


class TestExpandGrid:
    def test_row_major_nested_loop_order(self):
        points = expand_grid({"a": (1, 2), "b": ("x", "y")})
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_axis_gives_no_points(self):
        assert expand_grid({"a": (), "b": (1,)}) == []


class TestScenarioBuilder:
    def test_homogeneous_matches_direct_constructor(self):
        from repro.core.slices import TEMPLATES
        from repro.simulation.scenario import homogeneous_scenario

        spec = tiny_sim_spec()
        built = build_scenario(spec.params, seed=spec.seed)
        direct = homogeneous_scenario(
            operator="romanian",
            template=TEMPLATES["eMBB"],
            num_tenants=3,
            mean_load_fraction=0.3,
            relative_std=0.25,
            penalty_factor=1.0,
            num_epochs=2,
            num_base_stations=2,
            seed=1,
        )
        assert built.name == direct.name
        assert [w.name for w in built.workloads] == [w.name for w in direct.workloads]

    def test_unknown_scenario_kind_raises(self):
        with pytest.raises(KeyError, match="unknown scenario kind"):
            build_scenario({"scenario": "nope"}, seed=1)

    def test_unknown_run_kind_raises(self):
        spec = RunSpec(experiment="x", kind="not-a-kind", params={})
        with pytest.raises(KeyError, match="unknown run kind"):
            execute_spec(spec)


class TestRunStoreAndResume:
    def test_run_persists_and_resumes(self, tmp_path):
        campaign = Campaign(
            name="test",
            specs=(tiny_sim_spec("no-overbooking"), tiny_sim_spec("optimal")),
        )
        first = campaign.run(cache_dir=tmp_path)
        assert (first.num_executed, first.num_cached) == (2, 0)
        second = campaign.run(cache_dir=tmp_path)
        assert (second.num_executed, second.num_cached) == (0, 2)
        assert [r.as_dict() for r in first.records] == [
            r.as_dict() for r in second.records
        ]

    def test_partial_cache_runs_only_missing(self, tmp_path):
        baseline_only = Campaign(name="test", specs=(tiny_sim_spec("no-overbooking"),))
        baseline_only.run(cache_dir=tmp_path)
        both = Campaign(
            name="test",
            specs=(tiny_sim_spec("no-overbooking"), tiny_sim_spec("optimal")),
        )
        result = both.run(cache_dir=tmp_path)
        assert (result.num_executed, result.num_cached) == (1, 1)

    def test_force_reexecutes_everything(self, tmp_path):
        campaign = Campaign(name="test", specs=(tiny_sim_spec(),))
        campaign.run(cache_dir=tmp_path)
        forced = campaign.run(cache_dir=tmp_path, force=True)
        assert forced.num_executed == 1

    def test_no_cache_dir_runs_everything_and_writes_nothing(self, tmp_path):
        campaign = Campaign(name="test", specs=(tiny_sim_spec(),))
        result = campaign.run(cache_dir=None)
        assert result.num_executed == 1
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_record_is_reexecuted(self, tmp_path):
        spec = tiny_sim_spec()
        campaign = Campaign(name="test", specs=(spec,))
        campaign.run(cache_dir=tmp_path)
        store = RunStore(tmp_path)
        store.path_for(spec).write_text("{ not json")
        result = campaign.run(cache_dir=tmp_path)
        assert result.num_executed == 1
        # ... and the repaired record is valid again.
        assert store.load(spec) is not None

    def test_record_with_mismatched_spec_is_ignored(self, tmp_path):
        spec = tiny_sim_spec()
        other = tiny_sim_spec(alpha=0.7)
        record = execute_spec(other)
        store = RunStore(tmp_path)
        payload = record.as_dict()
        store.path_for(spec).parent.mkdir(parents=True)
        store.path_for(spec).write_text(json.dumps(payload))
        assert store.load(spec) is None

    def test_tuple_valued_params_hit_the_cache(self, tmp_path):
        # Tuples JSON-round-trip as lists; the spec's as_dict normalisation
        # must make the loaded record match, or every re-run silently
        # re-executes (regression test).
        spec = tiny_sim_spec(tags=("a", "b"))
        campaign = Campaign(name="test", specs=(spec,))
        assert campaign.run(cache_dir=tmp_path).num_executed == 1
        resumed = campaign.run(cache_dir=tmp_path)
        assert (resumed.num_executed, resumed.num_cached) == (0, 1)

    def test_interrupted_sweep_keeps_completed_records(self, tmp_path):
        # A failing run aborts the sweep, but everything that completed
        # before it must already be persisted (incremental saves).
        ok = RunSpec(experiment="test", kind="flaky-test-kind", params={"boom": False})
        bad = RunSpec(experiment="test", kind="flaky-test-kind", params={"boom": True})
        campaign = Campaign(name="test", specs=(ok, bad))
        with pytest.raises(RuntimeError, match="boom"):
            campaign.run(cache_dir=tmp_path)
        assert RunStore(tmp_path).load(ok) is not None
        status = campaign.status(cache_dir=tmp_path)
        assert (status.cached, status.missing) == (1, 1)

    def test_pool_failure_still_persists_completed_runs(self, tmp_path):
        # Pool mode drains completed futures before re-raising a failure,
        # so sibling runs that finished are persisted for the resume.
        # The bad spec fails inside the worker (unknown scenario kind).
        from repro.utils.executors import ProcessPoolRunExecutor

        good = [tiny_sim_spec("no-overbooking"), tiny_sim_spec("optimal")]
        bad = tiny_sim_spec(scenario="not-a-scenario")
        campaign = Campaign(name="test", specs=(bad, *good))
        with pytest.raises(KeyError, match="unknown scenario kind"):
            campaign.run(
                cache_dir=tmp_path, executor=ProcessPoolRunExecutor(max_workers=2)
            )
        store = RunStore(tmp_path)
        assert all(store.load(spec) is not None for spec in good)
        resumed = Campaign(name="test", specs=tuple(good)).run(cache_dir=tmp_path)
        assert resumed.num_executed == 0

    def test_status_counts_cached_runs(self, tmp_path):
        campaign = Campaign(
            name="test",
            specs=(tiny_sim_spec("no-overbooking"), tiny_sim_spec("optimal")),
        )
        assert campaign.status(cache_dir=tmp_path).cached == 0
        Campaign(name="test", specs=(tiny_sim_spec("optimal"),)).run(
            cache_dir=tmp_path
        )
        status = campaign.status(cache_dir=tmp_path)
        assert (status.total, status.cached, status.missing) == (2, 1, 1)

    def test_record_roundtrips_through_json(self):
        record = execute_spec(tiny_sim_spec())
        payload = json.loads(json.dumps(record.as_dict()))
        restored = RunRecord.from_dict(payload)
        assert restored.spec == record.spec
        assert restored.summary == dict(record.summary)

    def test_unsupported_schema_rejected(self):
        record = execute_spec(tiny_sim_spec())
        payload = record.as_dict()
        payload["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            RunRecord.from_dict(payload)


class TestExecutorSelection:
    def test_default_executor_serial_below_two_workers(self):
        assert isinstance(default_executor(None), SerialExecutor)
        assert isinstance(default_executor(1), SerialExecutor)
        assert isinstance(default_executor(4), ProcessPoolRunExecutor)

    def test_resolve_prefers_explicit_executor(self):
        explicit = SerialExecutor()
        assert resolve_executor(explicit, workers=8) is explicit

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolRunExecutor(max_workers=0)


class TestCli:
    def test_list_names_all_campaigns(self):
        out = io.StringIO()
        assert cli_main(["list"], out=out) == 0
        text = out.getvalue()
        for name in ("fig4", "fig5", "fig6", "fig8", "sla", "solver-ablation"):
            assert name in text

    def test_run_then_status_reports_cached(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            ["--cache-dir", str(tmp_path), "run", "sla", "--no-render"], out=out
        )
        assert code == 0
        assert "2 executed, 0 cached" in out.getvalue()

        out = io.StringIO()
        cli_main(["--cache-dir", str(tmp_path), "run", "sla", "--no-render"], out=out)
        assert "0 executed, 2 cached" in out.getvalue()
        assert "all runs cached" in out.getvalue()

        out = io.StringIO()
        cli_main(["--cache-dir", str(tmp_path), "status", "sla"], out=out)
        assert "2/2" in out.getvalue()

    def test_run_renders_reduced_figure(self, tmp_path):
        out = io.StringIO()
        cli_main(["--cache-dir", str(tmp_path), "run", "sla"], out=out)
        assert "violations=" in out.getvalue()

    def test_unknown_campaign_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["--cache-dir", str(tmp_path), "run", "not-a-campaign"])
