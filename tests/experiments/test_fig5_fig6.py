"""Tests for the Fig. 5 / Fig. 6 experiment harnesses (tiny grids)."""

import pytest

from repro.experiments.fig5_homogeneous import format_fig5, run_fig5
from repro.experiments.fig6_heterogeneous import format_fig6, run_fig6


@pytest.fixture(scope="module")
def fig5_points():
    return run_fig5(
        operators=("romanian",),
        slice_types=("eMBB",),
        alphas=(0.2, 0.6),
        relative_stds=(0.25,),
        penalty_factors=(1.0,),
        policies=("optimal",),
        num_base_stations=4,
        num_tenants={"romanian": 6},
        num_epochs=2,
        seed=1,
    )


class TestFig5:
    def test_grid_size(self, fig5_points):
        assert len(fig5_points) == 2  # 2 alphas x 1 policy

    def test_overbooking_gain_positive_at_low_load(self, fig5_points):
        low = next(p for p in fig5_points if p.alpha == 0.2)
        assert low.gain_percent > 0.0
        assert low.num_admitted >= low.baseline_admitted

    def test_gain_decreases_with_load(self, fig5_points):
        low = next(p for p in fig5_points if p.alpha == 0.2)
        high = next(p for p in fig5_points if p.alpha == 0.6)
        assert high.gain_percent <= low.gain_percent + 1e-9

    def test_as_dict_and_format(self, fig5_points):
        as_dict = fig5_points[0].as_dict()
        assert {"operator", "alpha", "gain_percent"} <= set(as_dict)
        text = format_fig5(fig5_points)
        assert "romanian" in text


@pytest.fixture(scope="module")
def fig6_points():
    return run_fig6(
        operators=("romanian",),
        mixes=(("eMBB", "mMTC"),),
        betas=(0.0, 0.5),
        policies=("optimal",),
        num_base_stations=4,
        num_tenants={"romanian": 6},
        num_epochs=2,
        seed=1,
    )


class TestFig6:
    def test_grid_includes_baseline(self, fig6_points):
        policies = {p.policy for p in fig6_points}
        assert policies == {"optimal", "no-overbooking"}
        assert len(fig6_points) == 4  # 2 betas x 2 policies

    def test_overbooking_never_below_baseline(self, fig6_points):
        for beta in (0.0, 0.5):
            optimal = next(
                p for p in fig6_points if p.beta == beta and p.policy == "optimal"
            )
            baseline = next(
                p
                for p in fig6_points
                if p.beta == beta and p.policy == "no-overbooking"
            )
            assert optimal.net_revenue >= baseline.net_revenue - 1e-9

    def test_adding_mmtc_increases_revenue(self, fig6_points):
        # mMTC slices pay a higher reward (1 + b = 3), so replacing half of
        # the eMBB tenants with mMTC ones increases the overbooked revenue.
        low = next(p for p in fig6_points if p.beta == 0.0 and p.policy == "optimal")
        high = next(p for p in fig6_points if p.beta == 0.5 and p.policy == "optimal")
        assert high.net_revenue > low.net_revenue

    def test_format(self, fig6_points):
        text = format_fig6(fig6_points)
        assert "eMBB+mMTC" in text
