"""Reduce/aggregation coverage for all six experiment modules on tiny grids,
plus resumability: a pre-seeded cache directory must yield zero new runs and
identical reduced output for every module."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    forecaster_ablation_campaign,
    reduce_forecaster_ablation,
    reduce_solver_ablation,
    run_forecaster_ablation,
    run_solver_ablation,
    solver_ablation_campaign,
)
from repro.experiments.fig4_topologies import fig4_campaign, reduce_fig4, run_fig4
from repro.experiments.fig5_homogeneous import fig5_campaign, reduce_fig5, run_fig5
from repro.experiments.fig6_heterogeneous import fig6_campaign, reduce_fig6, run_fig6
from repro.experiments.fig8_testbed import fig8_campaign, reduce_fig8, run_fig8
from repro.experiments.sla_violations import (
    reduce_sla_violations,
    run_sla_violations,
    sla_violations_campaign,
)

FIG5_GRID = {
    "operators": ("romanian",),
    "slice_types": ("eMBB",),
    "alphas": (0.2, 0.6),
    "relative_stds": (0.25,),
    "penalty_factors": (1.0,),
    "policies": ("optimal",),
    "num_base_stations": 3,
    "num_tenants": {"romanian": 4},
    "num_epochs": 2,
    "seed": 1,
}

FIG6_GRID = {
    "operators": ("romanian",),
    "mixes": (("eMBB", "mMTC"),),
    "betas": (0.0, 1.0),
    "policies": ("optimal",),
    "num_base_stations": 3,
    "num_tenants": {"romanian": 4},
    "num_epochs": 2,
    "seed": 1,
}

SLA_GRID = {"num_base_stations": 3, "num_tenants": 4, "num_epochs": 3, "seed": 5}

SOLVER_GRID = {"sizes": ((3, 3),), "solvers": ("optimal", "kac"), "seed": 1}

FORECASTER_GRID = {
    "forecasters": ("naive", "peak"),
    "num_tenants": 2,
    "num_base_stations": 2,
    "num_days": 1,
    "epochs_per_day": 4,
    "seed": 2,
}


def assert_resumes_with_zero_new_runs(campaign, tmp_path):
    first = campaign.run(cache_dir=tmp_path)
    assert first.num_executed == len(campaign.specs)
    second = campaign.run(cache_dir=tmp_path)
    assert second.num_executed == 0
    assert second.num_cached == len(campaign.specs)
    assert [r.as_dict() for r in first.records] == [
        r.as_dict() for r in second.records
    ]
    return first, second


class TestFig4Reduce:
    def test_reduce_rebuilds_cdfs_from_records(self, tmp_path):
        campaign = fig4_campaign(
            num_base_stations=6, k_paths=2, seed=1, operators=("romanian", "swiss")
        )
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        fresh = reduce_fig4(first)
        cached = reduce_fig4(second)
        assert set(fresh.operators) == {"romanian", "swiss"}
        stats = fresh.operators["romanian"]
        assert stats.num_base_stations == 6
        # CDFs rebuilt from persisted samples match the fresh computation.
        assert (
            cached.operators["romanian"].capacity_cdf_gbps.values
            == stats.capacity_cdf_gbps.values
        )
        assert cached.rows() == fresh.rows()

    def test_run_fig4_from_cache(self, tmp_path):
        first = run_fig4(
            num_base_stations=6, k_paths=2, seed=1, operators=("romanian",),
            cache_dir=tmp_path,
        )
        again = run_fig4(
            num_base_stations=6, k_paths=2, seed=1, operators=("romanian",),
            cache_dir=tmp_path,
        )
        assert again.rows() == first.rows()


class TestFig5Reduce:
    def test_points_pair_each_policy_with_its_baseline(self, tmp_path):
        campaign = fig5_campaign(**FIG5_GRID)
        # 2 scenario points x (baseline + optimal) = 4 runs but only 2 points.
        assert len(campaign.specs) == 4
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        points = reduce_fig5(first, policies=FIG5_GRID["policies"])
        assert [p.alpha for p in points] == [0.2, 0.6]
        for point in points:
            assert point.policy == "optimal"
            assert point.baseline_admitted <= point.num_admitted
        assert reduce_fig5(second, policies=FIG5_GRID["policies"]) == points

    def test_run_fig5_cached_matches_fresh(self, tmp_path):
        fresh = run_fig5(**FIG5_GRID)
        cached_twice = run_fig5(**FIG5_GRID, cache_dir=tmp_path)
        resumed = run_fig5(**FIG5_GRID, cache_dir=tmp_path)
        assert fresh == cached_twice == resumed

    def test_baseline_listed_as_policy_gets_zero_gain(self):
        grid = {**FIG5_GRID, "policies": ("optimal", "no-overbooking")}
        points = run_fig5(**grid)
        baseline_points = [p for p in points if p.policy == "no-overbooking"]
        assert len(baseline_points) == 2
        for point in baseline_points:
            assert point.gain_percent == pytest.approx(0.0)
            assert point.net_revenue == point.baseline_revenue


class TestFig6Reduce:
    def test_rows_in_grid_order_with_baseline(self, tmp_path):
        campaign = fig6_campaign(**FIG6_GRID)
        first, _ = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        points = reduce_fig6(first)
        assert [(p.beta, p.policy) for p in points] == [
            (0.0, "optimal"),
            (0.0, "no-overbooking"),
            (1.0, "optimal"),
            (1.0, "no-overbooking"),
        ]
        assert all(p.mix == ("eMBB", "mMTC") for p in points)

    def test_run_fig6_cached_matches_fresh(self, tmp_path):
        fresh = run_fig6(**FIG6_GRID)
        run_fig6(**FIG6_GRID, cache_dir=tmp_path)
        resumed = run_fig6(**FIG6_GRID, cache_dir=tmp_path)
        assert resumed == fresh


class TestFig8Reduce:
    def test_result_rebuilt_from_records(self, tmp_path):
        campaign = fig8_campaign(
            policies=("optimal", "no-overbooking"), num_epochs=6, seed=3
        )
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        fresh = reduce_fig8(first)
        cached = reduce_fig8(second)
        assert fresh.policies() == ["optimal", "no-overbooking"]
        assert cached.final_revenue("optimal") == fresh.final_revenue("optimal")
        assert cached.revenue_timeline("optimal") == fresh.revenue_timeline("optimal")
        assert cached.admitted("optimal") == fresh.admitted("optimal")

    def test_domain_timelines_survive_persistence(self, tmp_path):
        result = run_fig8(
            policies=("optimal",), num_epochs=6, seed=3, cache_dir=tmp_path
        )
        resumed = run_fig8(
            policies=("optimal",), num_epochs=6, seed=3, cache_dir=tmp_path
        )
        for domain, keys in (
            ("radio", {"bs-0", "bs-1"}),
            ("compute", {"edge-cu", "core-cu"}),
        ):
            fresh_timeline = result.domain_timeline("optimal", domain)
            assert set(fresh_timeline) == keys
            assert resumed.domain_timeline("optimal", domain) == fresh_timeline
        # Transport keys are JSON-safe "a--b" labels.
        transport = resumed.domain_timeline("optimal", "transport")
        assert all("--" in label for label in transport)


class TestSlaReduce:
    def test_rows_cover_both_configurations(self, tmp_path):
        campaign = sla_violations_campaign(**SLA_GRID)
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        rows = reduce_sla_violations(first)
        assert [row.relative_std for row in rows] == [0.5, 0.75]
        assert [row.penalty_factor for row in rows] == [1.0, 0.01]
        assert all(row.label for row in rows)
        assert reduce_sla_violations(second) == rows

    def test_run_sla_violations_cached(self, tmp_path):
        fresh = run_sla_violations(**SLA_GRID)
        run_sla_violations(**SLA_GRID, cache_dir=tmp_path)
        assert run_sla_violations(**SLA_GRID, cache_dir=tmp_path) == fresh


class TestSolverAblationReduce:
    def test_gap_measured_against_milp_record(self, tmp_path):
        campaign = solver_ablation_campaign(**SOLVER_GRID)
        # The requested solvers plus nothing extra: "optimal" is already the
        # reference, so the (3, 3) size expands to exactly two runs.
        assert len(campaign.specs) == 2
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        rows = reduce_solver_ablation(first, solvers=SOLVER_GRID["solvers"])
        by_solver = {row.solver: row for row in rows}
        assert by_solver["optimal"].optimality_gap_percent == pytest.approx(0.0)
        assert by_solver["kac"].optimality_gap_percent >= 0.0
        assert reduce_solver_ablation(second, solvers=SOLVER_GRID["solvers"]) == rows

    def test_reference_included_even_when_not_requested(self):
        campaign = solver_ablation_campaign(
            sizes=((3, 3),), solvers=("kac",), seed=1
        )
        solvers = {spec.params["solver"] for spec in campaign.specs}
        assert solvers == {"optimal", "kac"}
        rows = run_solver_ablation(sizes=((3, 3),), solvers=("kac",), seed=1)
        assert [row.solver for row in rows] == ["kac"]


class TestForecasterAblationReduce:
    def test_rows_per_forecaster_and_resume(self, tmp_path):
        campaign = forecaster_ablation_campaign(**FORECASTER_GRID)
        first, second = assert_resumes_with_zero_new_runs(campaign, tmp_path)
        rows = reduce_forecaster_ablation(first)
        assert [row.forecaster for row in rows] == ["naive", "peak"]
        for row in rows:
            assert row.net_revenue >= 0.0
        assert reduce_forecaster_ablation(second) == rows

    def test_run_forecaster_ablation_cached(self, tmp_path):
        fresh = run_forecaster_ablation(**FORECASTER_GRID)
        run_forecaster_ablation(**FORECASTER_GRID, cache_dir=tmp_path)
        assert run_forecaster_ablation(**FORECASTER_GRID, cache_dir=tmp_path) == fresh
