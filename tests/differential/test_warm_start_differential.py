"""Warm-vs-cold differential checking of the Benders warm-start layer.

For every sampled scenario, a warm-started Benders solver carried across a
sequence of steady-state forecast drifts must produce decisions that are
*bit-identical* to fresh cold solves of the same instances: the warm fast
path either certifies the previous optimum under the solver's own stopping
rule or falls back to the exact cold trajectory, so any fingerprint
difference is a warm-start bug.  Warm starts must also never cost extra
master iterations.
"""

from __future__ import annotations

import pytest

from repro.scenarios import DIFFERENTIAL_FAMILY, sample_scenario, warm_start_check
from tests.differential.conftest import (
    BASE_SEED,
    NUM_DIFFERENTIAL_SCENARIOS,
    seed_note,
)

pytestmark = pytest.mark.differential

SEEDS = [BASE_SEED + index for index in range(NUM_DIFFERENTIAL_SCENARIOS)]

#: Steady-state drift epochs checked per scenario (on top of the cold
#: epoch-0 instance).  Two keep the sweep inside the CI time cap while
#: still exercising consecutive fast-path hits.
_NUM_PERTURBATIONS = 2

#: Per-seed outcomes, shared across the tests in this module so the
#: aggregate assertions do not redo the sweep's solver work.
_OUTCOMES: dict[int, object] = {}


def _outcome(seed):
    if seed not in _OUTCOMES:
        scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
        _OUTCOMES[seed] = warm_start_check(
            scenario, num_perturbations=_NUM_PERTURBATIONS
        )
    return _OUTCOMES[seed]


@pytest.mark.parametrize("seed", SEEDS)
def test_warm_start_is_bit_identical_to_cold(seed):
    outcome = _outcome(seed)
    assert outcome.identical, (
        f"warm-started Benders diverged from cold solves: {outcome.describe()} "
        f"{seed_note(seed)}"
    )
    assert outcome.warm_iterations <= outcome.cold_iterations, (
        f"warm start cost extra master iterations: {outcome.describe()} "
        f"{seed_note(seed)}"
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_warm_start_is_bit_identical_under_exact_tolerances(seed):
    """Same claim under the harness's near-exact stopping rule (1e-9)."""
    scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
    outcome = warm_start_check(
        scenario, num_perturbations=_NUM_PERTURBATIONS, exact_tolerances=True
    )
    assert outcome.identical, f"{outcome.describe()} {seed_note(seed)}"


def test_warm_start_fast_path_engages_somewhere():
    """The sweep exercises the fast path, not just the cold fallback."""
    hits = sum(_outcome(seed).fast_path_hits for seed in SEEDS[:8])
    assert hits > 0


def test_warm_start_check_is_reproducible():
    scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED)
    first = warm_start_check(scenario, num_perturbations=1)
    second = warm_start_check(scenario, num_perturbations=1)
    assert first == second
