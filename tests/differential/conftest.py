"""Shared plumbing for the differential / randomized-invariant harness.

Reproducibility contract: every test in this package derives its randomness
from ``REPRO_TEST_SEED`` (default 0).  The CI workflow exports the variable
and echoes it when a shard fails, so any failure is replayable locally with

    REPRO_TEST_SEED=<seed> pytest -m differential
"""

from __future__ import annotations

import os

import pytest

#: Base seed of the whole differential harness; folded into every sampled
#: scenario seed and echoed in failure messages.
BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

#: How many scenarios the solver-differential sweep samples (the acceptance
#: bar is >= 25; a few extra cover the generator knobs more densely).
NUM_DIFFERENTIAL_SCENARIOS = 28


def seed_note(seed: int) -> str:
    """Failure-message suffix making the run reproducible from the log."""
    return (
        f"[REPRO_TEST_SEED={BASE_SEED}, scenario seed={seed}; rerun with "
        f"REPRO_TEST_SEED={BASE_SEED} pytest -m differential]"
    )


@pytest.fixture(scope="session")
def base_seed() -> int:
    return BASE_SEED
