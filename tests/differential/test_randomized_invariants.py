"""Randomized invariant suite: generator-driven properties of full runs.

Hypothesis draws small scenario families (population, demand regime, churn
and failure knobs) plus seeds; each drawn scenario is simulated end-to-end
and the run must satisfy the system invariants the paper's accounting relies
on:

* capacity is never exceeded after statistical multiplexing,
* SLA/penalty accounting is consistent with the admission outcome,
* the revenue decomposition sums (net = reward - penalty, per epoch and in
  aggregate).

``derandomize=True`` keeps the suite deterministic per code version; the
scenario-level randomness is still seeded by ``REPRO_TEST_SEED`` through
``BASE_SEED`` so CI can replay any failure.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios import ScenarioFamily, sample_scenario
from repro.simulation.runner import run_scenario
from tests.differential.conftest import BASE_SEED, seed_note

pytestmark = pytest.mark.differential

_CAPACITY_SLACK = 1e-6


@st.composite
def small_families(draw) -> ScenarioFamily:
    """Tiny-but-varied families: every knob group gets exercised."""
    num_tenants_hi = draw(st.integers(2, 5))
    seasonal = draw(st.sampled_from([0.0, 0.5]))
    bursty = draw(st.sampled_from([0.0, 0.3]))
    return ScenarioFamily(
        name="hypothesis-small",
        operator_profiles=(draw(st.sampled_from(["romanian", "swiss", "italian"])),),
        num_base_stations=(2, 3),
        num_tenants=(2, num_tenants_hi),
        arrival_window_fraction=draw(st.sampled_from([0.0, 0.5])),
        min_duration_fraction=draw(st.sampled_from([0.4, 1.0])),
        mean_load_fraction=(0.15, draw(st.sampled_from([0.5, 0.8]))),
        relative_std=(0.05, 0.4),
        seasonal_probability=seasonal,
        bursty_probability=bursty,
        degradation_probability=draw(st.sampled_from([0.0, 0.5])),
        num_epochs=(2, 4),
        samples_per_epoch=4,
        record_usage=True,
    )


def _run(family: ScenarioFamily, seed: int):
    scenario = sample_scenario(family, seed=seed)
    return scenario, run_scenario(scenario, policy="optimal")


@settings(max_examples=8, deadline=None, derandomize=True)
@given(family=small_families(), offset=st.integers(0, 10_000))
def test_capacity_never_exceeded_post_multiplexing(family, offset):
    seed = BASE_SEED + offset
    scenario, result = _run(family, seed)
    note = seed_note(seed)
    for record in result.epoch_records:
        for domain in (record.radio_usage, record.transport_usage, record.compute_usage):
            for key, usage in domain.items():
                assert usage.used <= usage.capacity + _CAPACITY_SLACK, (
                    f"{key}: served {usage.used} exceeds capacity {usage.capacity} "
                    f"at epoch {record.epoch} of {scenario.name} {note}"
                )
                assert usage.reserved <= usage.capacity + _CAPACITY_SLACK, (
                    f"{key}: reserved {usage.reserved} exceeds capacity "
                    f"{usage.capacity} at epoch {record.epoch} {note}"
                )


@settings(max_examples=8, deadline=None, derandomize=True)
@given(family=small_families(), offset=st.integers(0, 10_000))
def test_sla_accounting_consistent_with_admissions(family, offset):
    seed = BASE_SEED + offset
    scenario, result = _run(family, seed)
    note = seed_note(seed)
    workload_names = {workload.name for workload in scenario.workloads}
    admitted = set(result.final_admitted)
    rejected = set(result.final_rejected)
    assert not admitted & rejected, note
    assert admitted | rejected <= workload_names, note
    assert result.num_admitted == len(result.final_admitted), note
    # Rewards and penalties accrue only for slices that were provisioned.
    report = result.revenue
    assert set(report.per_slice_reward) <= workload_names, note
    assert set(report.per_slice_penalty) <= set(report.per_slice_reward), note
    assert 0 <= report.violated_samples <= report.total_samples, note
    assert 0.0 <= report.violation_probability <= 1.0, note
    for fraction in report.drop_fractions:
        assert 0.0 <= fraction <= 1.0 + 1e-9, note
    if report.violated_samples == 0:
        # No violated monitoring sample means every per-BS deficit stayed
        # below the violation tolerance, so penalties are negligible.
        assert report.total_penalty <= 1e-3, note


@settings(max_examples=8, deadline=None, derandomize=True)
@given(family=small_families(), offset=st.integers(0, 10_000))
def test_revenue_decomposition_sums(family, offset):
    seed = BASE_SEED + offset
    scenario, result = _run(family, seed)
    note = seed_note(seed)
    report = result.revenue
    assert result.net_revenue == pytest.approx(
        report.total_reward - report.total_penalty, abs=1e-9
    ), note
    assert result.net_revenue == pytest.approx(
        float(np.sum(report.per_epoch_net)), abs=1e-9
    ), note
    for epoch_revenue in report.epochs:
        assert epoch_revenue.net == pytest.approx(
            epoch_revenue.reward - epoch_revenue.penalty, abs=1e-12
        ), note
    assert report.total_reward == pytest.approx(
        sum(report.per_slice_reward.values()), abs=1e-9
    ), note
    assert report.total_penalty == pytest.approx(
        sum(report.per_slice_penalty.values()), abs=1e-9
    ), note
    summary = result.summary()
    assert summary["net_revenue"] == pytest.approx(result.net_revenue), note
    assert summary["epochs"] == len(report.epochs), note


@settings(max_examples=4, deadline=None, derandomize=True)
@given(offset=st.integers(0, 10_000))
def test_policies_agree_on_replayed_demand(offset):
    """Paired runs: the baseline replays the same demand traces, so its
    reward never exceeds what the (optimal) overbooking policy books."""
    seed = BASE_SEED + offset
    family = ScenarioFamily(
        name="hypothesis-paired",
        operator_profiles=("swiss",),
        num_base_stations=(2, 2),
        num_tenants=(3, 5),
        mean_load_fraction=(0.2, 0.6),
        num_epochs=(2, 3),
        samples_per_epoch=4,
    )
    scenario = sample_scenario(family, seed=seed)
    optimal = run_scenario(scenario, policy="optimal")
    baseline = run_scenario(replace(scenario, name=scenario.name + ":baseline"),
                            policy="no-overbooking")
    note = seed_note(seed)
    # The baseline's admitted set is overbooking-feasible at full SLA with
    # zero risk, so the overbooking optimum books at least as much reward.
    # (Admission *counts* can legitimately differ either way.)
    assert baseline.revenue.total_reward <= optimal.revenue.total_reward + 1e-9, note
