"""Byte-determinism and validity of the stochastic scenario generator."""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.scenarios import (
    CHURN_FAMILY,
    DIFFERENTIAL_FAMILY,
    FAILURE_FAMILY,
    FAMILIES,
    SEASONAL_ONLINE_FAMILY,
    ScenarioFamily,
    sample_scenario,
    scenario_fingerprint,
    scenario_payload,
)
from repro.traffic.patterns import demand_for_request
from tests.differential.conftest import BASE_SEED, seed_note

ALL_FAMILIES = (DIFFERENTIAL_FAMILY, CHURN_FAMILY, SEASONAL_ONLINE_FAMILY, FAILURE_FAMILY)


class TestByteDeterminism:
    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    @pytest.mark.parametrize("offset", [0, 1, 17])
    def test_same_spec_and_seed_is_byte_identical(self, family, offset):
        seed = BASE_SEED + offset
        first = sample_scenario(family, seed=seed)
        second = sample_scenario(family, seed=seed)
        bytes_a = json.dumps(scenario_payload(first), sort_keys=True).encode()
        bytes_b = json.dumps(scenario_payload(second), sort_keys=True).encode()
        assert bytes_a == bytes_b, seed_note(seed)
        assert scenario_fingerprint(first) == scenario_fingerprint(second)

    def test_distinct_seeds_sample_distinct_scenarios(self):
        fingerprints = {
            scenario_fingerprint(sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED + i))
            for i in range(10)
        }
        assert len(fingerprints) == 10

    def test_distinct_family_content_samples_distinct_scenarios(self):
        tweaked = replace(DIFFERENTIAL_FAMILY, capacity_spread=(0.9, 1.1))
        assert tweaked.family_hash != DIFFERENTIAL_FAMILY.family_hash
        assert scenario_fingerprint(
            sample_scenario(tweaked, seed=BASE_SEED)
        ) != scenario_fingerprint(sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED))

    def test_demand_traces_replay_identically(self):
        seed = BASE_SEED + 3
        traces = []
        for _ in range(2):
            scenario = sample_scenario(CHURN_FAMILY, seed=seed)
            workload = scenario.workloads[0]
            model = demand_for_request(workload.request, workload.demand, seed=scenario.seed)
            traces.append(model.peak_series(scenario.num_epochs, scenario.samples_per_epoch))
        np.testing.assert_array_equal(traces[0], traces[1])

    def test_family_round_trips_through_json(self):
        for family in ALL_FAMILIES:
            payload = json.loads(json.dumps(family.as_dict()))
            rebuilt = ScenarioFamily.from_dict(payload)
            assert rebuilt == family
            assert rebuilt.family_hash == family.family_hash


class TestSampledScenarioValidity:
    @pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: f.name)
    def test_samples_respect_the_declared_ranges(self, family):
        for offset in range(20):
            seed = BASE_SEED + offset
            scenario = sample_scenario(family, seed=seed)
            note = seed_note(seed)
            bs_lo, bs_hi = family.num_base_stations
            assert bs_lo <= len(scenario.topology.base_station_names) <= bs_hi, note
            tenants_lo, tenants_hi = family.num_tenants
            assert tenants_lo <= len(scenario.workloads) <= tenants_hi, note
            epochs_lo, epochs_hi = family.num_epochs
            assert epochs_lo <= scenario.num_epochs <= epochs_hi, note
            assert scenario.forecast_mode == family.forecast_mode, note
            assert scenario.record_usage == family.record_usage, note
            for workload in scenario.workloads:
                request = workload.request
                assert 0 <= request.arrival_epoch < scenario.num_epochs, note
                assert request.duration_epochs >= 1, note
                assert (
                    request.arrival_epoch + request.duration_epochs
                    <= scenario.num_epochs
                ), note
                assert request.penalty_factor in family.penalty_factors, note
                lo, hi = family.mean_load_fraction
                assert lo <= workload.demand.mean_fraction <= hi, note
                assert not (workload.demand.seasonal and workload.demand.bursty), note

    def test_no_churn_family_keeps_everyone_for_the_whole_run(self):
        scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=BASE_SEED)
        for workload in scenario.workloads:
            assert workload.request.arrival_epoch == 0
            assert workload.request.duration_epochs == scenario.num_epochs

    def test_churn_family_produces_arrivals_and_departures(self):
        arrivals = departures = 0
        for offset in range(12):
            scenario = sample_scenario(CHURN_FAMILY, seed=BASE_SEED + offset)
            for workload in scenario.workloads:
                if workload.request.arrival_epoch > 0:
                    arrivals += 1
                if workload.request.expires_at() < scenario.num_epochs:
                    departures += 1
        assert arrivals > 0, "arrival_window_fraction=0.6 never produced a mid-run arrival"
        assert departures > 0, "min_duration_fraction=0.3 never produced a departure"

    def test_degradation_reduces_link_capacity(self):
        from repro.scenarios.generator import _sample_topology
        from repro.utils.rng import make_rng

        degraded_family = replace(
            DIFFERENTIAL_FAMILY, degradation_probability=1.0, name="always-degraded"
        )
        pristine_family = replace(
            degraded_family, degradation_probability=0.0, name="never-degraded"
        )
        # Identically-seeded generators draw the same profile and topology;
        # the only divergence is the degradation episode applied at the end,
        # so the comparison is link-by-link deterministic.
        degraded = _sample_topology(degraded_family, make_rng(BASE_SEED + 123))
        pristine = _sample_topology(pristine_family, make_rng(BASE_SEED + 123))
        degraded_caps = {link.key: link.capacity_mbps for link in degraded.links}
        pristine_caps = {link.key: link.capacity_mbps for link in pristine.links}
        assert set(degraded_caps) == set(pristine_caps)
        assert all(
            degraded_caps[key] <= pristine_caps[key] + 1e-9 for key in pristine_caps
        )
        assert sum(degraded_caps.values()) < sum(pristine_caps.values())

    def test_presets_registry_is_consistent(self):
        assert set(FAMILIES) == {family.name for family in ALL_FAMILIES}
