"""Differential certification of the multi-cut parallel Benders master.

Two claims over the full generated-scenario sweep:

* **exactness** -- the disaggregated (multi-cut) master converges to the
  same optimum as the exact MILP, and hence the single-cut master: the
  per-block cuts are derived from relaxed per-tenant sub-LPs
  (``q(x) >= sum_b q_b(x)``) and ride alongside the classic aggregate cut,
  so they tighten the trajectory without perturbing the fixed point;
* **determinism** -- the multi-cut decision is bit-identical whichever
  executor prices the blocks (serial, or thread pools of 1/2/4 workers):
  block LPs are independent deterministic solves folded back in block
  order, never completion order.
"""

from __future__ import annotations

import pytest

from repro.scenarios import DIFFERENTIAL_FAMILY, multi_cut_check, sample_scenario
from tests.differential.conftest import (
    BASE_SEED,
    NUM_DIFFERENTIAL_SCENARIOS,
    seed_note,
)

pytestmark = pytest.mark.differential

SEEDS = [BASE_SEED + index for index in range(NUM_DIFFERENTIAL_SCENARIOS)]


@pytest.mark.parametrize("seed", SEEDS)
def test_multi_cut_matches_milp_and_is_worker_invariant(seed):
    scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
    outcome = multi_cut_check(scenario, rel_tolerance=1e-6, worker_counts=(1, 2, 4))
    assert outcome.multi_cut_matches_milp, (
        f"multi-cut Benders disagrees with the exact MILP: {outcome.describe()} "
        f"{seed_note(seed)}"
    )
    assert outcome.matches_single_cut, (
        f"multi-cut and single-cut Benders disagree: {outcome.describe()} "
        f"{seed_note(seed)}"
    )
    assert outcome.fingerprints_identical, (
        f"multi-cut decision depends on the worker count: {outcome.describe()} "
        f"{seed_note(seed)}"
    )


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_multi_cut_outcome_is_reproducible(seed):
    """The whole check is a pure function of (family, seed)."""
    first = multi_cut_check(sample_scenario(DIFFERENTIAL_FAMILY, seed=seed))
    second = multi_cut_check(sample_scenario(DIFFERENTIAL_FAMILY, seed=seed))
    assert first == second, seed_note(seed)
