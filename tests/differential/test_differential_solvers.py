"""Differential checking of the solver layer on generated scenarios.

For every sampled small scenario, the Benders decomposition must reproduce
the exact MILP optimum (Theorem 2) within 1e-6 relative tolerance, and the
overbooking optimum must dominate the no-overbooking baseline.  This is the
refinement-check that caught the pre-surrogate Benders failure mode: on
transport-constrained instances the master cycled through weak phase-1
feasibility cuts and never produced an incumbent (fixed by the
floor-footprint capacity surrogates in ``_MasterState``).
"""

from __future__ import annotations

import pytest

from repro.scenarios import DIFFERENTIAL_FAMILY, differential_check, sample_scenario
from tests.differential.conftest import (
    BASE_SEED,
    NUM_DIFFERENTIAL_SCENARIOS,
    seed_note,
)

pytestmark = pytest.mark.differential

SEEDS = [BASE_SEED + index for index in range(NUM_DIFFERENTIAL_SCENARIOS)]


@pytest.mark.parametrize("seed", SEEDS)
def test_benders_matches_milp_and_dominates_baseline(seed):
    scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=seed)
    outcome = differential_check(scenario, rel_tolerance=1e-6)
    assert outcome.benders_matches_milp, (
        f"Benders disagrees with the exact MILP: {outcome.describe()} {seed_note(seed)}"
    )
    assert outcome.dominates_baseline, (
        f"overbooking fails to dominate the baseline: {outcome.describe()} "
        f"{seed_note(seed)}"
    )


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_differential_outcome_is_reproducible(seed):
    """The whole check is a pure function of (family, seed)."""
    first = differential_check(sample_scenario(DIFFERENTIAL_FAMILY, seed=seed))
    second = differential_check(sample_scenario(DIFFERENTIAL_FAMILY, seed=seed))
    assert first == second, seed_note(seed)


def test_family_covers_enough_scenarios():
    """The sweep size stays at or above the 25-scenario acceptance bar."""
    assert len(SEEDS) >= 25
