"""Benchmark / regeneration of Fig. 6: heterogeneous-scenario net revenue."""

from repro.experiments.fig6_heterogeneous import format_fig6, run_fig6


def test_fig6_heterogeneous_revenue(benchmark, full_figures):
    if full_figures:
        kwargs = {}
    else:
        kwargs = {
            "operators": ("romanian", "swiss"),
            "mixes": (("eMBB", "mMTC"), ("eMBB", "uRLLC")),
            "betas": (0.0, 0.5, 1.0),
            "policies": ("optimal",),
            "num_base_stations": 6,
            "num_tenants": {"romanian": 8, "swiss": 8},
            "num_epochs": 2,
            "seed": 1,
        }
    points = benchmark.pedantic(run_fig6, kwargs=kwargs, rounds=1, iterations=1)
    assert points, "Fig. 6 sweep returned no points"
    benchmark.extra_info["fig6"] = [p.as_dict() for p in points]
    print("\n" + format_fig6(points))

    def revenue(operator, mix, beta, policy):
        matches = [
            p.net_revenue
            for p in points
            if p.operator == operator
            and p.mix == mix
            and abs(p.beta - beta) < 1e-9
            and p.policy == policy
        ]
        return matches[0]

    # Overbooking dominates the no-overbooking baseline at every mix point.
    for p in points:
        if p.policy != "optimal":
            continue
        baseline = revenue(p.operator, p.mix, p.beta, "no-overbooking")
        assert p.net_revenue >= baseline - 1e-9
    # Fig. 6 top-left: revenue grows as mMTC (higher reward) replaces eMBB
    # under overbooking.
    assert revenue("romanian", ("eMBB", "mMTC"), 1.0, "optimal") > revenue(
        "romanian", ("eMBB", "mMTC"), 0.0, "optimal"
    )
