"""Benchmark: campaign sweep throughput (runs/sec on the fig5 grid).

Measures how fast the campaign layer pushes independent simulation runs
through an executor -- the number BENCH tracking watches so regressions in
spec hashing, record persistence or the per-run hot path show up as a drop
in sweep throughput.  A second (non-benchmarked) pass over the same cache
directory asserts the resume path touches zero runs.
"""

import tempfile

from repro.experiments.fig5_homogeneous import fig5_campaign
from repro.utils.executors import SerialExecutor

#: The reduced fig5 grid the throughput number refers to: 12 scenario points
#: x (baseline + 2 policies) = 36 independent runs.
GRID = {
    "operators": ("romanian", "swiss"),
    "slice_types": ("eMBB",),
    "alphas": (0.2, 0.5, 0.8),
    "relative_stds": (0.0, 0.25),
    "penalty_factors": (1.0,),
    "policies": ("optimal", "kac"),
    "num_base_stations": 6,
    "num_tenants": {"romanian": 8, "swiss": 8},
    "num_epochs": 2,
    "seed": 1,
}


def test_campaign_sweep_throughput(benchmark):
    campaign = fig5_campaign(**GRID)

    def sweep():
        with tempfile.TemporaryDirectory() as cache_dir:
            result = campaign.run(cache_dir=cache_dir, executor=SerialExecutor())
            assert result.num_executed == len(campaign.specs)
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    runs_per_sec = len(campaign.specs) / elapsed if elapsed > 0 else float("inf")
    benchmark.extra_info["campaign_throughput"] = {
        "grid": "fig5-reduced",
        "num_runs": len(campaign.specs),
        "elapsed_s": elapsed,
        "runs_per_sec": runs_per_sec,
    }
    print(f"\n  fig5 grid: {len(campaign.specs)} runs in {elapsed:.2f}s "
          f"({runs_per_sec:.2f} runs/s serial)")

    # Resume pass: a warm cache must execute nothing.
    with tempfile.TemporaryDirectory() as cache_dir:
        cold = campaign.run(cache_dir=cache_dir, executor=SerialExecutor())
        warm = campaign.run(cache_dir=cache_dir, executor=SerialExecutor())
        assert cold.num_executed == len(campaign.specs)
        assert warm.num_executed == 0
        assert warm.num_cached == len(campaign.specs)
