"""Benchmark / regeneration of Table 1 (slice templates)."""

from repro.experiments.table1_templates import format_table1, table1_rows


def test_table1_templates(benchmark):
    rows = benchmark(table1_rows)
    assert len(rows) == 3
    benchmark.extra_info["table1"] = rows
    print("\n" + format_table1(rows))
