"""Benchmarks for the multi-cut parallel Benders master (see DESIGN.md).

The headline claim: disaggregating the slave by per-tenant resource block --
one optimality cut per block and iteration, alongside the classic aggregate
cut -- cuts the steady-state epoch latency of the 28-scenario differential
sweep by >= 3x at the oracle's near-exact tolerances, while reaching the
same optimum (the sweep in ``tests/differential`` certifies every scenario
against the exact MILP and across worker counts).  The lazy cut-row
accumulator that makes the extra cuts affordable is guarded alongside.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_multi_cut.py \
        --benchmark-json=BENCH_multi_cut.json -q
"""

import time

import numpy as np
import pytest
from scipy import sparse

from repro.core.benders import BendersSolver, _MasterState
from repro.core.decomposition import SlaveProblem
from repro.scenarios import DIFFERENTIAL_FAMILY, sample_scenario
from repro.scenarios.oracle import (
    _BENDERS_MAX_ITERATIONS,
    _BENDERS_TOLERANCE,
    problem_for_scenario,
)

pytestmark = pytest.mark.perf

#: The full differential-sweep instance set (28 scenarios, seeds 0..27 --
#: the same family/size the oracle harness certifies).
_NUM_SWEEP_SCENARIOS = 28


def sweep_problems():
    return [
        problem_for_scenario(sample_scenario(DIFFERENTIAL_FAMILY, seed=seed))
        for seed in range(_NUM_SWEEP_SCENARIOS)
    ]


def solver(multi_cut: bool) -> BendersSolver:
    # Oracle settings: near-exact stopping rule, iteration-capped, no
    # wall-clock cutoffs -- the regime where the single-cut master pays its
    # one-cut-per-iteration tail and the disaggregation pays off.
    return BendersSolver(
        tolerance=_BENDERS_TOLERANCE,
        relative_tolerance=_BENDERS_TOLERANCE,
        max_iterations=_BENDERS_MAX_ITERATIONS,
        master_time_limit_s=None,
        time_limit_s=None,
        warm_start=False,
        multi_cut=multi_cut,
    )


def test_multi_cut_sweep_latency_vs_single_cut(benchmark):
    """>= 3x epoch-latency cut over the 28-scenario sweep, same optima."""
    problems = sweep_problems()

    started = time.perf_counter()
    single_decisions = [solver(False).solve(problem) for problem in problems]
    single_s = time.perf_counter() - started

    def multi_sweep():
        return [solver(True).solve(problem) for problem in problems]

    multi_decisions = benchmark.pedantic(multi_sweep, rounds=1, iterations=1)
    multi_s = benchmark.stats.stats.mean if benchmark.stats is not None else (
        time.perf_counter() - started - single_s
    )

    for single, multi in zip(single_decisions, multi_decisions):
        assert multi.expected_net_reward == pytest.approx(
            single.expected_net_reward, abs=1e-6
        )
    speedup = single_s / multi_s
    assert speedup >= 3.0, (
        f"multi-cut must cut the sweep latency >= 3x: single={single_s:.2f}s "
        f"multi={multi_s:.2f}s ({speedup:.2f}x)"
    )
    benchmark.extra_info["num_scenarios"] = len(problems)
    benchmark.extra_info["single_cut_sweep_s"] = single_s
    benchmark.extra_info["multi_cut_sweep_s"] = multi_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["single_cut_iterations"] = sum(
        d.stats.iterations for d in single_decisions
    )
    benchmark.extra_info["multi_cut_iterations"] = sum(
        d.stats.iterations for d in multi_decisions
    )


def test_single_cut_sweep_latency(benchmark):
    """Reference: the same sweep through the classic aggregate-cut master."""
    problems = sweep_problems()

    def single_sweep():
        return [solver(False).solve(problem) for problem in problems]

    decisions = benchmark.pedantic(single_sweep, rounds=1, iterations=1)
    benchmark.extra_info["num_scenarios"] = len(problems)
    benchmark.extra_info["iterations"] = sum(d.stats.iterations for d in decisions)


def test_cut_accumulation_is_not_quadratic(benchmark, monkeypatch):
    """Guard for the lazy cut store: one vstack per fold, not per cut.

    The pre-fix ``add_cut`` re-stacked the whole CSR matrix on every call,
    making a k-cut master round O(k^2) in row copies.  The fixed store
    queues rows and folds them once per ``cut_rows()`` call; this benchmark
    pins both the count (exactly one stack per fold) and the latency of a
    realistic 512-cut accumulation.
    """
    problem = problem_for_scenario(sample_scenario(DIFFERENTIAL_FAMILY, seed=0))
    slave = SlaveProblem(problem)
    lowers = np.array([block.theta_lower for block in slave.blocks()])
    num_cuts = 512
    rng = np.random.default_rng(7)
    coefficients = rng.normal(size=(num_cuts, problem.num_items))

    vstack_calls = []
    real_vstack = sparse.vstack

    def counting_vstack(blocks, *args, **kwargs):
        vstack_calls.append(len(blocks))
        return real_vstack(blocks, *args, **kwargs)

    monkeypatch.setattr("repro.core.benders.sparse.vstack", counting_vstack)

    def accumulate():
        master = _MasterState(problem, problem.objective_x(), lowers)
        for row in coefficients:
            master.add_cut(row, 0.0, True)
        matrix, rhs = master.cut_rows()
        return matrix.shape[0]

    folded = benchmark.pedantic(accumulate, rounds=3, iterations=1)
    assert folded == num_cuts
    # Every vstack observed must be the single whole-batch fold: a per-cut
    # re-stacking regression would show up as many small (2-block) stacks.
    assert vstack_calls and all(c == num_cuts for c in vstack_calls), (
        f"expected one {num_cuts}-row fold per round, saw {vstack_calls[:10]}"
    )
    benchmark.extra_info["num_cuts"] = num_cuts
    benchmark.extra_info["vstack_calls_per_round"] = 1
