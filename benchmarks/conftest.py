"""Benchmark-harness configuration.

Every benchmark regenerates one table or figure of the paper on the reduced
operator topologies (see DESIGN.md, "Scale note") and records the resulting
data series in ``benchmark.extra_info`` so the numbers can be inspected in
the pytest-benchmark JSON output as well as on stdout.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-figures",
        action="store_true",
        default=False,
        help="Run the figure benchmarks on larger grids (slower, closer to the paper's sweep)",
    )


@pytest.fixture(scope="session")
def full_figures(request):
    return request.config.getoption("--full-figures")
