"""City-scale trace-replay throughput baseline (the ROADMAP's 100k target).

Two benchmarks pin the workload tier's scale contract:

* **city throughput** -- replay the full city week (:data:`CITY_TRACE`:
  ~2 400 Poisson arrivals/epoch over 7 seasonal days plus a 20k
  arrival-window IoT population) through the columnar engine and assert it
  sustains >= 100 000 live slices per epoch.  The committed baseline
  records live slices per epoch (peak and mean), epochs per second and
  peak RSS in ``benchmark.extra_info`` (and thus in ``BENCH_perf.json``
  and CI's uploaded artifact).

* **sublinear per-epoch cost** -- two replays with *identical churn*
  (1 000 arrivals/epoch) but 10x different contract durations, so the
  steady-state registry holds ~10k vs ~100k live slices.  Because the
  engine's per-epoch work is O(churn) -- expiry wheels, incremental
  occupancy/revenue, columnar admission -- the mean steady-state epoch
  time may not scale with the live-set size: the 100k/10k ratio is pinned
  far below the 10x a linear scan would show.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_replay.py \
        --benchmark-json=BENCH_trace_replay.json -q
"""

from __future__ import annotations

import os
import resource
import time

import pytest

from repro.workloads.campaigns import CITY_TRACE
from repro.workloads.catalogue import SliceClass, TemplateCatalogue
from repro.workloads.replay import ColumnarReplayEngine
from repro.workloads.trace import TraceSpec

pytestmark = pytest.mark.perf

#: Live-slice floor the city replay must sustain (the ROADMAP target).
CITY_LIVE_FLOOR = int(os.environ.get("REPRO_BENCH_CITY_LIVE_FLOOR", "100000"))

#: Allowed steady-state per-epoch time ratio between the ~100k-live and the
#: ~10k-live replay (identical churn).  A linear O(registry) pass would show
#: ~10x; the wheel-based engine stays near 1x, so 3x is a generous guard
#: against noisy CI runners.
SUBLINEAR_RATIO_BOUND = float(os.environ.get("REPRO_BENCH_SUBLINEAR_RATIO", "3.0"))


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_city_scale_replay_throughput(benchmark):
    """Replay the city week; commit the 100k-live throughput baseline."""
    spec = CITY_TRACE
    outcome = {}

    def replay():
        engine = ColumnarReplayEngine(
            spec, seed=1, retention_epochs=spec.epochs_per_day * 7
        )
        started = time.perf_counter()
        result = engine.run()
        outcome["elapsed_s"] = time.perf_counter() - started
        outcome["result"] = result
        return result

    result = benchmark.pedantic(replay, rounds=1, iterations=1)

    assert result.peak_live >= CITY_LIVE_FLOOR, (
        f"city replay peaked at {result.peak_live} live slices; "
        f"the workload tier must sustain >= {CITY_LIVE_FLOOR}"
    )
    assert result.mean_live >= CITY_LIVE_FLOOR, (
        f"mean live population {result.mean_live:.0f} fell below the "
        f"{CITY_LIVE_FLOOR} sustained-load floor"
    )
    # Determinism across engine instances: same (spec, seed) -> identical
    # per-epoch stream.
    rerun = ColumnarReplayEngine(
        spec, seed=1, retention_epochs=spec.epochs_per_day * 7
    ).run()
    assert rerun.stream_fingerprint == result.stream_fingerprint

    elapsed = outcome["elapsed_s"]
    benchmark.extra_info.update(
        {
            "epochs": result.epochs,
            "total_arrivals": result.total_arrivals,
            "peak_live_slices_per_epoch": result.peak_live,
            "mean_live_slices_per_epoch": round(result.mean_live, 1),
            "epochs_per_s": round(result.epochs / elapsed, 2),
            "arrivals_per_s": round(result.total_arrivals / elapsed, 1),
            "peak_rss_mb": round(_peak_rss_mb(), 1),
            "stream_fingerprint": result.stream_fingerprint,
        }
    )


def _flat_churn_spec(duration_epochs: int, horizon_epochs: int) -> TraceSpec:
    """1 000 arrivals/epoch with fixed-duration contracts and flat seasons.

    Steady-state live population = rate x duration, so scaling the
    duration scales the registry while the per-epoch churn stays fixed.
    """
    catalogue = TemplateCatalogue(
        name=f"flat-d{duration_epochs}",
        classes=(
            SliceClass(
                name="embb-flat",
                template="eMBB",
                elastic=True,
                weight=1.0,
                duration_epochs=(duration_epochs, duration_epochs),
                mean_fraction=0.35,
                relative_std=0.2,
            ),
        ),
    )
    return TraceSpec(
        name=f"flat-churn-d{duration_epochs}",
        catalogue=catalogue,
        horizon_epochs=horizon_epochs,
        epochs_per_day=24,
        arrival_rate=1_000.0,
        day_profile=(1.0,) * 24,
        week_profile=(1.0,),
        aggregate_capacity_mbps=1e9,
    )


def _steady_epoch_seconds(spec: TraceSpec, warmup_epochs: int) -> tuple[float, int]:
    """Mean wall-clock seconds per epoch after ``warmup_epochs``, plus the
    steady-state live-slice count (trace generation + engine, the full
    per-epoch driver cost)."""
    timings: list[float] = []
    live_counts: list[float] = []
    last = time.perf_counter()

    def on_epoch(epoch: int, metrics: dict) -> None:
        nonlocal last
        now = time.perf_counter()
        if epoch >= warmup_epochs:
            timings.append(now - last)
            live_counts.append(metrics["live"])
        last = now

    ColumnarReplayEngine(spec, seed=3, retention_epochs=24).run(on_epoch=on_epoch)
    return sum(timings) / len(timings), int(sum(live_counts) / len(live_counts))


def test_per_epoch_cost_sublinear_in_registry(benchmark):
    """Identical churn, 10x registry: per-epoch time must not scale with it."""
    small = _flat_churn_spec(duration_epochs=10, horizon_epochs=160)
    large = _flat_churn_spec(duration_epochs=100, horizon_epochs=160)
    outcome = {}

    def measure():
        small_s, small_live = _steady_epoch_seconds(small, warmup_epochs=20)
        large_s, large_live = _steady_epoch_seconds(large, warmup_epochs=110)
        outcome.update(
            small_s=small_s, small_live=small_live,
            large_s=large_s, large_live=large_live,
        )
        return outcome

    benchmark.pedantic(measure, rounds=1, iterations=1)

    assert outcome["small_live"] < 15_000 < 90_000 < outcome["large_live"]
    ratio = outcome["large_s"] / outcome["small_s"]
    assert ratio < SUBLINEAR_RATIO_BOUND, (
        f"per-epoch driver cost grew {ratio:.2f}x when the live registry "
        f"grew {outcome['large_live'] / outcome['small_live']:.1f}x -- the "
        f"replay loop has O(registry) work in it"
    )
    benchmark.extra_info.update(
        {
            "steady_live_small": outcome["small_live"],
            "steady_live_large": outcome["large_live"],
            "epoch_ms_small": round(outcome["small_s"] * 1e3, 3),
            "epoch_ms_large": round(outcome["large_s"] * 1e3, 3),
            "per_epoch_cost_ratio": round(ratio, 3),
            "ratio_bound": SUBLINEAR_RATIO_BOUND,
        }
    )
