"""Benchmark / regeneration of the SLA-violation statistics (Sections 4.3.3-4.3.4)."""

from repro.experiments.sla_violations import run_sla_violations


def test_sla_violation_footprint(benchmark, full_figures):
    kwargs = {
        "num_base_stations": None if full_figures else 8,
        "num_tenants": 10,
        "num_epochs": 16 if full_figures else 8,
        "seed": 7,
    }
    results = benchmark.pedantic(run_sla_violations, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["sla_violations"] = [r.as_dict() for r in results]
    print()
    for r in results:
        print(
            f"  {r.label:<42} violation_prob={r.violation_probability:.6f} "
            f"mean_drop={r.mean_drop_fraction:.3f} max_drop={r.max_drop_fraction:.3f}"
        )
    # Paper: violations affect a negligible share of monitoring samples.
    for r in results:
        assert r.violation_probability < 0.01
