"""Benchmark / regeneration of Fig. 5: homogeneous-scenario revenue gains."""

from repro.experiments.fig5_homogeneous import format_fig5, run_fig5


def test_fig5_homogeneous_gains(benchmark, full_figures):
    if full_figures:
        kwargs = {}
    else:
        kwargs = {
            "operators": ("romanian", "swiss", "italian"),
            "slice_types": ("eMBB", "mMTC", "uRLLC"),
            "alphas": (0.2, 0.5, 0.8),
            "relative_stds": (0.0, 0.25),
            "penalty_factors": (1.0,),
            "policies": ("optimal", "kac"),
            "num_base_stations": 6,
            "num_tenants": {"romanian": 8, "swiss": 8, "italian": 12},
            "num_epochs": 2,
            "seed": 1,
        }
    points = benchmark.pedantic(run_fig5, kwargs=kwargs, rounds=1, iterations=1)
    assert points, "Fig. 5 sweep returned no points"
    benchmark.extra_info["fig5"] = [p.as_dict() for p in points]
    print("\n" + format_fig5(points))

    # Shape checks mirroring the paper's observations.
    def gain(operator, slice_type, alpha, policy="optimal"):
        matches = [
            p.gain_percent
            for p in points
            if p.operator == operator
            and p.slice_type == slice_type
            and abs(p.alpha - alpha) < 1e-9
            and p.policy == policy
        ]
        return sum(matches) / len(matches)

    # Overbooking pays off at low load and the gain shrinks as alpha grows.
    assert gain("romanian", "eMBB", 0.2) > 100.0
    assert gain("romanian", "eMBB", 0.2) >= gain("romanian", "eMBB", 0.8)
    # The transport-constrained Swiss network benefits more than the Romanian.
    assert gain("swiss", "eMBB", 0.2) > gain("romanian", "eMBB", 0.2)
