"""Benchmark / regeneration of Fig. 8: the dynamic testbed experiment."""

from repro.experiments.fig8_testbed import run_fig8


def test_fig8_testbed_experiment(benchmark):
    result = benchmark.pedantic(
        run_fig8,
        kwargs={"policies": ("optimal", "no-overbooking"), "num_epochs": 18, "seed": 3},
        rounds=1,
        iterations=1,
    )
    overbooked = result.final_revenue("optimal")
    baseline = result.final_revenue("no-overbooking")
    benchmark.extra_info["fig8"] = {
        "net_revenue_overbooking": overbooked,
        "net_revenue_no_overbooking": baseline,
        "admitted_overbooking": list(result.admitted("optimal")),
        "admitted_no_overbooking": list(result.admitted("no-overbooking")),
        "revenue_timeline_overbooking": result.revenue_timeline("optimal"),
        "revenue_timeline_no_overbooking": result.revenue_timeline("no-overbooking"),
    }
    print()
    print(f"  overbooking:    revenue={overbooked:6.2f} admitted={result.admitted('optimal')}")
    print(f"  no-overbooking: revenue={baseline:6.2f} admitted={result.admitted('no-overbooking')}")
    for policy in ("optimal", "no-overbooking"):
        compute = result.domain_timeline(policy, "compute").get("edge-cu", [])
        if compute:
            hour, reserved, used = compute[-1]
            print(f"  {policy:<15} edge CU at {hour}: reserved={reserved:5.1f} used={used:5.1f} CPUs")

    # Fig. 8(a): overbooking earns at least as much, by admitting extra slices.
    assert overbooked >= baseline - 1e-9
    assert len(result.admitted("optimal")) >= len(result.admitted("no-overbooking"))
