"""Benchmarks for the cross-epoch warm-start layer (see DESIGN.md).

The headline claim: on perturbed steady-state epoch sweeps -- the regime the
Fig. 5/6/8 campaigns spend thousands of epochs in -- the warm-started
Benders solver certifies the previous epoch's optimum in a single
master/slave round, cutting master iterations by at least 2x against cold
solves while returning bit-identical decisions.  The monitoring layer's
incremental peak cache is tracked alongside, since the same steady-state
epochs hit it once per slice per forecast.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_warm_start.py \
        --benchmark-json=BENCH_warm_start.json -q
"""

import numpy as np
import pytest

from repro.controlplane.monitoring import MonitoringService
from repro.core.benders import BendersSolver
from repro.scenarios import (
    DIFFERENTIAL_FAMILY,
    decision_fingerprint,
    sample_scenario,
)
from repro.scenarios.oracle import _perturbed_forecast_sequence, problem_for_scenario
from repro.utils.rng import derive_seed

pytestmark = pytest.mark.perf

#: Scenario used for the perturbed steady-state sweep: a generated instance
#: whose cold Benders solve needs two master iterations per perturbed epoch
#: and whose warm fast path certifies every drift epoch in one.
_SWEEP_SCENARIO_SEED = 0
_SWEEP_EPOCHS = 7  # 1 cold warm-up epoch + 6 perturbed steady-state epochs


def perturbed_sweep():
    """The benchmark's instance sequence: epoch 0 plus steady-state drift."""
    scenario = sample_scenario(DIFFERENTIAL_FAMILY, seed=_SWEEP_SCENARIO_SEED)
    base = problem_for_scenario(scenario, epoch=0)
    drift = _perturbed_forecast_sequence(
        base,
        count=_SWEEP_EPOCHS - 1,
        spread=0.02,
        seed=derive_seed(scenario.seed, "warm-start-bench", scenario.name),
    )
    return [base] + drift


def solver(warm: bool) -> BendersSolver:
    return BendersSolver(master_time_limit_s=None, time_limit_s=None, warm_start=warm)


# --------------------------------------------------------------------- #
# Solver layer
# --------------------------------------------------------------------- #
def test_warm_start_iteration_reduction(benchmark):
    """Warm sweep: >= 2x fewer steady-state master iterations, bit-identical
    decisions.

    The first epoch is the unavoidable cold warm-up (the pool is empty); the
    headline ratio is measured on the steady-state tail, which is the regime
    a thousands-of-epochs campaign actually lives in.
    """
    instances = perturbed_sweep()

    cold_decisions = [solver(False).solve(problem) for problem in instances]
    cold_iterations = sum(d.stats.iterations for d in cold_decisions)
    cold_tail = sum(d.stats.iterations for d in cold_decisions[1:])

    def warm_sweep():
        warm_solver = solver(True)
        return [warm_solver.solve(problem) for problem in instances]

    warm_decisions = benchmark.pedantic(warm_sweep, rounds=3, iterations=1)
    warm_iterations = sum(d.stats.iterations for d in warm_decisions)
    warm_tail = sum(d.stats.iterations for d in warm_decisions[1:])
    fast_path_hits = sum(1 for d in warm_decisions if d.stats.cuts_warm > 0)

    for cold, warm in zip(cold_decisions, warm_decisions):
        assert decision_fingerprint(cold) == decision_fingerprint(warm)
    assert fast_path_hits == len(instances) - 1  # every drift epoch certifies
    assert 2 * warm_tail <= cold_tail, (
        f"warm start must cut steady-state master iterations >= 2x: "
        f"cold tail={cold_tail} warm tail={warm_tail}"
    )
    benchmark.extra_info["num_epochs"] = len(instances)
    benchmark.extra_info["cold_iterations"] = cold_iterations
    benchmark.extra_info["warm_iterations"] = warm_iterations
    benchmark.extra_info["steady_state_iteration_ratio"] = cold_tail / warm_tail
    benchmark.extra_info["fast_path_hits"] = fast_path_hits


def test_cold_sweep_latency(benchmark):
    """Reference: the same sweep with warm starts disabled."""
    instances = perturbed_sweep()

    def cold_sweep():
        return [solver(False).solve(problem) for problem in instances]

    decisions = benchmark.pedantic(cold_sweep, rounds=3, iterations=1)
    benchmark.extra_info["num_epochs"] = len(instances)
    benchmark.extra_info["cold_iterations"] = sum(
        d.stats.iterations for d in decisions
    )


def test_fast_path_resolve_latency(benchmark):
    """Marginal cost of replaying a byte-identical instance (one slave LP)."""
    instances = perturbed_sweep()
    warm_solver = solver(True)
    warm_solver.solve(instances[0])

    def resolve():
        return warm_solver.solve(instances[0])

    decision = benchmark.pedantic(resolve, rounds=5, iterations=2)
    assert decision.stats.cuts_warm > 0
    assert decision.stats.iterations == 0
    benchmark.extra_info["backing_cuts"] = decision.stats.cuts_warm


# --------------------------------------------------------------------- #
# Monitoring layer
# --------------------------------------------------------------------- #
def _loaded_monitoring(num_slices=8, num_bs=6, num_epochs=200, samples=12):
    monitoring = MonitoringService()
    rng = np.random.default_rng(5)
    for epoch in range(num_epochs):
        for s in range(num_slices):
            for b in range(num_bs):
                monitoring.record_samples(
                    f"slice-{s}", f"bs-{b}", epoch, rng.uniform(5.0, 50.0, samples)
                )
    return monitoring


def test_peak_history_steady_state_queries(benchmark):
    """Forecast-path reads between writes: served from the merged-peak cache."""
    monitoring = _loaded_monitoring()
    names = [f"slice-{s}" for s in range(8)]
    for name in names:
        monitoring.peak_history(name)  # populate the cache

    def query_all():
        return sum(monitoring.peak_history(name).size for name in names)

    total = benchmark.pedantic(query_all, rounds=5, iterations=50)
    assert total == 8 * 200
    benchmark.extra_info["num_slices"] = 8
    benchmark.extra_info["epochs_per_history"] = 200
    if benchmark.stats is not None:
        benchmark.extra_info["histories_per_s"] = (
            len(names) / benchmark.stats.stats.mean
        )


def test_peak_history_after_write(benchmark):
    """One epoch's write plus the invalidated re-merge it forces."""
    monitoring = _loaded_monitoring()
    monitoring.peak_history("slice-0")
    samples = np.full(12, 25.0)
    epochs = iter(range(200, 100_000))

    def write_and_query():
        epoch = next(epochs)
        for b in range(6):
            monitoring.record_samples("slice-0", f"bs-{b}", epoch, samples)
        return monitoring.peak_history("slice-0")

    history = benchmark.pedantic(write_and_query, rounds=5, iterations=20)
    assert history.size >= 200
    benchmark.extra_info["base_stations"] = 6
