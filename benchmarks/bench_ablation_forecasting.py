"""Ablation: forecaster choice on a seasonal workload (Holt-Winters vs simpler).

The paper selects multiplicative Holt-Winters because mobile demand is
diurnal; this benchmark replays a seasonal workload with online forecasting
under several forecasters and reports revenue and SLA footprint.
"""

from repro.experiments.ablations import run_forecaster_ablation


def test_forecaster_ablation(benchmark, full_figures):
    kwargs = {
        "forecasters": ("holt-winters", "double-exponential", "naive", "peak"),
        "num_tenants": 6,
        "num_base_stations": 4,
        "num_days": 3 if not full_figures else 5,
        "epochs_per_day": 12,
        "seed": 13,
    }
    rows = benchmark.pedantic(run_forecaster_ablation, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["forecaster_ablation"] = [row.as_dict() for row in rows]
    print()
    for row in rows:
        print(
            f"  {row.forecaster:<20} revenue={row.net_revenue:7.2f} "
            f"violations={row.violation_probability:.5f} admitted={row.num_admitted}"
        )
    by = {row.forecaster: row for row in rows}
    # The most conservative predictor (historical peak) can never earn more
    # than the seasonality-aware one.
    assert by["holt-winters"].net_revenue >= by["peak"].net_revenue - 1e-6
