"""Benchmark / regeneration of Fig. 4: operator topologies and path statistics.

The full-size networks (198 / 197 / 200 base stations) are used when the
``--full-figures`` option is passed; the default uses 40-BS reductions so the
whole benchmark suite stays fast.
"""

from repro.experiments.fig4_topologies import run_fig4


def test_fig4_path_distributions(benchmark, full_figures):
    num_bs = None if full_figures else 40
    result = benchmark.pedantic(
        run_fig4, kwargs={"num_base_stations": num_bs, "k_paths": 6, "seed": 1},
        rounds=1, iterations=1,
    )
    rows = result.rows()
    assert {row["operator"] for row in rows} == {"romanian", "swiss", "italian"}
    benchmark.extra_info["fig4"] = rows
    print()
    for row in rows:
        print(
            f"  {row['operator']:<10} BSs={row['num_base_stations']:>5.0f} "
            f"paths/pair={row['mean_paths_per_pair']:>5.2f} "
            f"median cap={row['median_capacity_gbps']:>7.2f} Gb/s "
            f"median delay={row['median_delay_us']:>7.1f} us "
            f"p95 delay={row['p95_delay_us']:>7.1f} us"
        )
    # Qualitative shape of Fig. 4(d)-(e): the Romanian network is the most
    # path-redundant, the Swiss one has the smallest path capacities.
    by_op = {row["operator"]: row for row in rows}
    assert by_op["romanian"]["mean_paths_per_pair"] > by_op["italian"]["mean_paths_per_pair"]
    assert by_op["swiss"]["median_capacity_gbps"] < by_op["romanian"]["median_capacity_gbps"]
