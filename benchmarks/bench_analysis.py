"""Benchmark of the `repro.analysis` full-tree invariant check.

The AST checker suite runs in CI on every push and (via the golden test)
inside the default pytest suite, so its cost is paid constantly: this
benchmark pins the full-tree RA01-RA05 run -- load + parse of every module
under ``src/`` plus all five checkers plus baseline matching -- under a
hard wall-clock budget so the tool stays cheap enough to gate commits.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py \
        --benchmark-json=BENCH_perf.json -q
"""

from pathlib import Path

import pytest

from repro.analysis import Baseline, ProjectTree, run_checkers
from repro.analysis.core import BASELINE_FILENAME

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Hard budget for one cold full-tree check (load + parse + all checkers).
#: Generous versus the observed time so runner jitter never flakes the CI
#: job, but far below the point where developers would stop running it.
FULL_TREE_BUDGET_S = 10.0


def run_full_check():
    tree = ProjectTree.load(REPO_ROOT)
    baseline = Baseline.parse(
        (REPO_ROOT / BASELINE_FILENAME).read_text(encoding="utf-8")
    )
    return tree, run_checkers(tree, baseline=baseline)


def test_full_tree_check_under_budget(benchmark):
    tree, report = benchmark(run_full_check)

    assert report.clean, "\n" + report.render()
    stats = benchmark.stats.stats
    assert stats.max < FULL_TREE_BUDGET_S, (
        f"full-tree analysis took {stats.max:.2f}s (budget {FULL_TREE_BUDGET_S}s)"
    )

    benchmark.extra_info["modules_scanned"] = len(tree.modules)
    benchmark.extra_info["suppressed_findings"] = len(report.suppressed)
    benchmark.extra_info["budget_s"] = FULL_TREE_BUDGET_S
