"""Ablation: solver runtime and optimality gap (direct MILP vs Benders vs KAC).

The paper motivates the KAC heuristic with the gap between Benders'
convergence time ("a few hours" on CPLEX for the full networks) and KAC's
("a few seconds").  This benchmark quantifies the same trade-off on reduced
instances.
"""

from repro.experiments.ablations import run_solver_ablation


def test_solver_ablation(benchmark, full_figures):
    sizes = ((4, 4), (6, 6), (8, 8)) if not full_figures else ((6, 6), (10, 10), (14, 14))
    rows = benchmark.pedantic(
        run_solver_ablation,
        kwargs={"sizes": sizes, "solvers": ("optimal", "benders", "kac"), "seed": 11},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["solver_ablation"] = [row.as_dict() for row in rows]
    print()
    for row in rows:
        print(
            f"  tenants={row.num_tenants:>3} BSs={row.num_base_stations:>3} items={row.num_items:>5} "
            f"{row.solver:<8} runtime={row.runtime_s:7.3f}s gap={row.optimality_gap_percent:6.2f}% "
            f"admitted={row.num_admitted}"
        )
    by = {(row.num_tenants, row.solver): row for row in rows}
    largest = max(size[0] for size in sizes)
    # Benders is exact (tiny gap); KAC is much faster than Benders.
    assert by[(largest, "benders")].optimality_gap_percent < 1.0
    assert by[(largest, "kac")].runtime_s < by[(largest, "benders")].runtime_s
