"""Microbenchmarks for the per-epoch hot paths (see DESIGN.md).

Four layers are tracked, matching the epoch cycle the evaluation runs
thousands of times: the work-conserving multiplexer (data plane), the
parametric slave LP (solver core), the Benders master with a large
accumulated cut pool (solver core), and the full decision epoch through
the simulation engine (control plane).  Each benchmark stores its headline
numbers in ``benchmark.extra_info`` so the perf trajectory is visible in
the pytest-benchmark JSON output.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_hotpaths.py \
        --benchmark-json=BENCH_perf.json -q
"""

import numpy as np
import pytest

from repro.core.benders import BendersSolver, _MasterState
from repro.core.decomposition import SlaveProblem
from repro.core.problem import ACRRProblem
from repro.core.slices import EMBB_TEMPLATE, make_requests
from repro.core.solution import TenantAllocation
from repro.dataplane.multiplexing import SliceMultiplexer
from repro.simulation.runner import run_scenario
from repro.simulation.scenario import homogeneous_scenario
from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    TransportLink,
    TransportSwitch,
)
from repro.topology.network import NetworkTopology
from repro.topology.paths import compute_path_sets

pytestmark = pytest.mark.perf


# --------------------------------------------------------------------- #
# Instance builders
# --------------------------------------------------------------------- #
def star_topology(
    num_base_stations: int,
    bs_capacity_mhz: float,
    link_capacity_mbps: float,
    edge_cpus: float = 10_000.0,
    core_cpus: float = 10_000.0,
) -> NetworkTopology:
    topology = NetworkTopology(name="bench-star")
    topology.add_switch(TransportSwitch(name="sw"))
    topology.add_compute_unit(
        ComputeUnit(name="edge-cu", capacity_cpus=edge_cpus, kind=ComputeUnitKind.EDGE)
    )
    topology.add_compute_unit(
        ComputeUnit(
            name="core-cu",
            capacity_cpus=core_cpus,
            kind=ComputeUnitKind.CORE,
            access_latency_ms=20.0,
        )
    )
    for i in range(num_base_stations):
        topology.add_base_station(
            BaseStation(name=f"bs-{i}", capacity_mhz=bs_capacity_mhz)
        )
        topology.add_link(
            TransportLink(
                endpoint_a=f"bs-{i}", endpoint_b="sw", capacity_mbps=link_capacity_mbps
            )
        )
    # The switch-to-CU links aggregate every base station's traffic.
    topology.add_link(
        TransportLink(
            endpoint_a="sw",
            endpoint_b="edge-cu",
            capacity_mbps=link_capacity_mbps * num_base_stations,
        )
    )
    topology.add_link(
        TransportLink(
            endpoint_a="sw",
            endpoint_b="core-cu",
            capacity_mbps=link_capacity_mbps * num_base_stations,
        )
    )
    topology.validate()
    return topology


def multiplexer_case(num_tenants=15, num_bs=20, num_samples=288, saturated=True, seed=3):
    """Many tenants per BS; with ``saturated`` the radio/link layers bind."""
    capacity_scale = 0.45 if saturated else 2.0
    sla = EMBB_TEMPLATE.sla_mbps
    topology = star_topology(
        num_base_stations=num_bs,
        bs_capacity_mhz=capacity_scale * num_tenants * sla / 7.5,
        link_capacity_mbps=1.1 * capacity_scale * num_tenants * sla,
    )
    path_set = compute_path_sets(topology, k=1)
    requests = make_requests(EMBB_TEMPLATE, num_tenants, duration_epochs=24)
    allocations = {}
    for t, request in enumerate(requests):
        cu = "edge-cu" if t % 2 == 0 else "core-cu"
        paths = {bs: path_set.paths(bs, cu)[0] for bs in topology.base_station_names}
        reservations = {bs: 0.4 * request.sla_mbps for bs in paths}
        allocations[request.name] = TenantAllocation(
            request=request,
            accepted=True,
            compute_unit=cu,
            paths=paths,
            reservations_mbps=reservations,
        )
    rng = np.random.default_rng(seed)
    offered = {
        (request.name, bs): rng.uniform(0.2 * sla, sla, size=num_samples)
        for request in requests
        for bs in topology.base_station_names
    }
    return topology, allocations, offered


def solver_problem(num_bs=3, num_tenants=10, load_fraction=0.25) -> ACRRProblem:
    """A tiny-star AC-RR instance on which the Benders loop converges."""
    from repro.core.forecast_inputs import ForecastInput

    topology = star_topology(
        num_base_stations=num_bs, bs_capacity_mhz=20.0, link_capacity_mbps=1000.0,
        edge_cpus=40.0, core_cpus=200.0,
    )
    path_set = compute_path_sets(topology, k=3)
    requests = make_requests(EMBB_TEMPLATE, num_tenants, duration_epochs=24)
    forecasts = {
        request.name: ForecastInput(
            lambda_hat_mbps=load_fraction * request.sla_mbps, sigma_hat=0.25
        )
        for request in requests
    }
    return ACRRProblem(
        topology=topology, path_set=path_set, requests=requests, forecasts=forecasts
    )


def epoch_scenario(num_epochs=8):
    return homogeneous_scenario(
        "romanian",
        EMBB_TEMPLATE,
        num_tenants=12,
        mean_load_fraction=0.55,
        relative_std=0.25,
        num_epochs=num_epochs,
        num_base_stations=12,
        seed=7,
        forecast_mode="oracle",
    )


# --------------------------------------------------------------------- #
# Data plane
# --------------------------------------------------------------------- #
def test_multiplexer_saturated_throughput(benchmark):
    topology, allocations, offered = multiplexer_case(saturated=True)
    mux = SliceMultiplexer(topology, allocations)
    result = benchmark.pedantic(
        mux.unserved_traffic, args=(offered,), rounds=5, iterations=1
    )
    num_samples = len(next(iter(offered.values())))
    benchmark.extra_info["num_keys"] = len(offered)
    benchmark.extra_info["num_samples"] = num_samples
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["key_samples_per_s"] = (
            len(offered) * num_samples / benchmark.stats.stats.mean
        )
    benchmark.extra_info["total_unserved_mbps"] = result.total_unserved()
    benchmark.extra_info["overloaded_resources"] = len(result.overloaded_resources)
    assert result.total_unserved() > 0.0


def test_multiplexer_unsaturated_throughput(benchmark):
    topology, allocations, offered = multiplexer_case(saturated=False)
    mux = SliceMultiplexer(topology, allocations)
    result = benchmark.pedantic(
        mux.unserved_traffic, args=(offered,), rounds=5, iterations=1
    )
    benchmark.extra_info["num_keys"] = len(offered)
    benchmark.extra_info["total_unserved_mbps"] = result.total_unserved()
    assert result.total_unserved() == 0.0


# --------------------------------------------------------------------- #
# Solver core
# --------------------------------------------------------------------- #
def test_slave_evaluate_feasible(benchmark):
    problem = solver_problem()
    slave = SlaveProblem(problem)
    x = np.zeros(problem.num_items)
    outcome = benchmark.pedantic(slave.evaluate, args=(x,), rounds=5, iterations=2)
    benchmark.extra_info["num_items"] = problem.num_items
    benchmark.extra_info["num_rows"] = slave.g_matrix.shape[0]
    assert outcome.feasible


def test_slave_evaluate_infeasible_certificate(benchmark):
    """The phase-1 path: every call previously re-hstacked [G | -I]."""
    problem = solver_problem()
    slave = SlaveProblem(problem)
    x = np.ones(problem.num_items)
    outcome = benchmark.pedantic(slave.evaluate, args=(x,), rounds=5, iterations=2)
    benchmark.extra_info["num_items"] = problem.num_items
    benchmark.extra_info["infeasibility"] = outcome.infeasibility
    assert not outcome.feasible


def test_benders_master_with_accumulated_cuts(benchmark):
    """One master solve late in the Benders loop, cut pool already large."""
    problem = solver_problem()
    solver = BendersSolver()
    slave = SlaveProblem(problem)
    master = _MasterState(
        problem, problem.objective_x(), slave.objective_lower_bound()
    )
    rng = np.random.default_rng(11)
    num_cuts = 60
    for _ in range(num_cuts):
        x = (rng.random(problem.num_items) < 0.5).astype(float)
        outcome = slave.evaluate(x)
        if outcome.feasible:
            coeff, rhs = slave.cut_from_multipliers(outcome.duals)
            master.add_cut(coeff, rhs, is_optimality=True)
        else:
            coeff, rhs = slave.cut_from_multipliers(outcome.ray)
            master.add_cut(coeff, rhs, is_optimality=False)
    assert master.num_cuts == num_cuts

    solution = benchmark.pedantic(
        solver._solve_master, args=(master,), rounds=5, iterations=1
    )
    assert solution is not None
    benchmark.extra_info["num_cuts"] = master.num_cuts
    benchmark.extra_info["num_items"] = problem.num_items
    benchmark.extra_info["master_objective"] = solution[2]


def test_benders_full_solve(benchmark):
    problem = solver_problem()
    decision = benchmark.pedantic(
        lambda: BendersSolver(max_iterations=200).solve(problem),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["iterations"] = decision.stats.iterations
    benchmark.extra_info["objective"] = decision.objective_value
    benchmark.extra_info["accepted"] = decision.num_accepted
    assert decision.num_accepted > 0


# --------------------------------------------------------------------- #
# Control plane: the full decision epoch
# --------------------------------------------------------------------- #
def _run_epochs():
    result = run_scenario(epoch_scenario(), policy="optimal")
    return result


def test_steady_state_epoch_latency(benchmark):
    """Marginal cost of one decision epoch once admission has settled.

    This is the latency the evaluation pays thousands of times per sweep:
    epoch 0 (the cold-start admission solve) runs once in the setup, the
    timed region is one full epoch -- forecast refresh, problem build,
    solve/reuse, data plane, revenue accounting -- in steady state.
    """
    from repro.core.milp_solver import DirectMILPSolver
    from repro.simulation.engine import SimulationEngine

    engine = SimulationEngine(epoch_scenario(num_epochs=60), DirectMILPSolver(), "optimal")
    for warmup_epoch in range(3):
        engine._run_one_epoch(warmup_epoch)
    epochs = iter(range(3, 60))

    def one_epoch():
        return engine._run_one_epoch(next(epochs))

    record = benchmark.pedantic(one_epoch, rounds=20, iterations=1)
    benchmark.extra_info["net_revenue_last_epoch"] = record.net_revenue
    benchmark.extra_info["active_slices"] = len(record.active_slices)
    assert record.active_slices


def test_full_epoch_latency(benchmark):
    result = benchmark.pedantic(_run_epochs, rounds=3, iterations=1)
    num_epochs = len(result.epoch_records)
    benchmark.extra_info["num_epochs"] = num_epochs
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["epoch_latency_s"] = benchmark.stats.stats.mean / num_epochs
    benchmark.extra_info["net_revenue"] = result.net_revenue
    benchmark.extra_info["num_admitted"] = result.num_admitted
    assert num_epochs == 8


def test_full_epoch_latency_without_decision_reuse(benchmark):
    """Raw per-epoch solver cost: decision reuse disabled."""
    from dataclasses import replace

    from repro.core.milp_solver import DirectMILPSolver
    from repro.simulation.engine import SimulationEngine

    def run():
        engine = SimulationEngine(epoch_scenario(), DirectMILPSolver(), "optimal")
        engine.orchestrator.config = replace(
            engine.orchestrator.config, reuse_unchanged_decisions=False
        )
        return engine.run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    num_epochs = len(result.epoch_records)
    benchmark.extra_info["num_epochs"] = num_epochs
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["epoch_latency_s"] = benchmark.stats.stats.mean / num_epochs
    benchmark.extra_info["net_revenue"] = result.net_revenue


def test_decision_reuse_preserves_results():
    """The reuse fast path must not change any simulation output."""
    from dataclasses import replace

    from repro.core.milp_solver import DirectMILPSolver
    from repro.simulation.engine import SimulationEngine

    with_reuse = SimulationEngine(epoch_scenario(), DirectMILPSolver(), "optimal")
    result_reuse = with_reuse.run()

    without = SimulationEngine(epoch_scenario(), DirectMILPSolver(), "optimal")
    without.orchestrator.config = replace(
        without.orchestrator.config, reuse_unchanged_decisions=False
    )
    result_cold = without.run()

    assert result_reuse.net_revenue == result_cold.net_revenue
    assert result_reuse.final_admitted == result_cold.final_admitted
    assert result_reuse.final_rejected == result_cold.final_rejected
    assert [r.net_revenue for r in result_reuse.epoch_records] == [
        r.net_revenue for r in result_cold.epoch_records
    ]
