"""Multi-tenant load harness for the HTTP/JSON broker transport.

The headline scenario drives ``REPRO_BENCH_SESSIONS`` (default 1000)
concurrent tenant sessions -- each its own OS thread with its own persistent
HTTP connection -- against one :class:`~repro.api.server.BrokerServer`.
Every session submits one tokened slice request, replays its idempotency
token (the lost-response retry), polls its status, then releases the slice;
the harness asserts the broker's core service SLOs:

* **zero dropped tickets** -- every session holds a ticket and the intake
  queue holds exactly one entry per session before the release wave;
* **zero duplicated tickets** -- ticket ids are unique across sessions, and
  each session's token replay returns its original ticket bit-identically;
* **events delivered** -- the cursor-paged ``/v1/events`` feed delivers the
  RELEASED event of every session exactly once (ratio pinned at 1.0);
* **admission latency** -- per-session submit latency p50/p99 recorded in
  ``benchmark.extra_info`` (and thus in the committed ``BENCH_perf.json``
  and CI's uploaded artifact).

A second benchmark pins the satellite fix on the same hot path: replay-cache
eviction must cost O(overflow) per submit, not O(queue + cache) -- the
per-submit latency with a 32x larger over-full cache may not grow with the
cache.

Record/compare a baseline with::

    PYTHONPATH=src python -m pytest benchmarks/bench_transport.py \
        --benchmark-json=BENCH_transport.json -q
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import pytest

from repro.api import BrokerClient, BrokerServer, SliceBroker, SliceRequestV1
from repro.api.dtos import AdmissionTicket
from repro.api.events import LifecycleEventKind
from repro.controlplane.slice_manager import SliceDescriptor
from repro.core.milp_solver import DirectMILPSolver
from repro.topology import operators

pytestmark = pytest.mark.perf

#: Concurrent tenant sessions of the headline load scenario (>= 1000 by
#: default: the SLO the roadmap pins).
SESSIONS = int(os.environ.get("REPRO_BENCH_SESSIONS", "1000"))

#: Small arrival-epoch-0 cohort admitted through a real solve, so the event
#: feed carries ADMITTED events alongside the session RELEASED wave.
ADMITTED_COHORT = 4


def make_server(**broker_kwargs) -> tuple[SliceBroker, BrokerServer]:
    broker = SliceBroker(
        topology=operators.testbed_topology(), solver=DirectMILPSolver(), **broker_kwargs
    )
    server = BrokerServer(broker)
    return broker, server


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Session:
    """One tenant's transport session: submit, idempotent retry, status,
    release -- with per-operation latencies."""

    def __init__(self, index: int, server: BrokerServer,
                 submit_barrier: threading.Barrier, release_barrier: threading.Barrier):
        self.index = index
        self.server = server
        self.submit_barrier = submit_barrier
        self.release_barrier = release_barrier
        self.name = f"tenant-{index:05d}"
        self.token = f"tok-{index:05d}"
        self.ticket: AdmissionTicket | None = None
        self.replay: AdmissionTicket | None = None
        self.queued_state: str | None = None
        self.released_state: str | None = None
        self.submit_s: float | None = None
        self.release_s: float | None = None
        self.error: BaseException | None = None

    def run(self) -> None:
        payload = SliceRequestV1.of(
            self.name, "mMTC", duration_epochs=2, arrival_epoch=1
        ).to_dict()
        try:
            with BrokerClient(self.server.host, self.server.port) as client:
                self.submit_barrier.wait()
                started = time.perf_counter()
                self.ticket = client.submit(payload, client_token=self.token)
                self.submit_s = time.perf_counter() - started
                self.replay = client.submit(payload, client_token=self.token)
                self.queued_state = client.status(self.name).state
                self.release_barrier.wait()
                started = time.perf_counter()
                self.released_state = client.release(self.name, epoch=0).state
                self.release_s = time.perf_counter() - started
        except BaseException as error:  # noqa: BLE001 -- reported by the harness
            self.error = error
            # Never leave peers blocked on a barrier.
            for barrier in (self.submit_barrier, self.release_barrier):
                try:
                    barrier.wait(timeout=0)
                except threading.BrokenBarrierError:
                    pass


def run_load(server: BrokerServer, broker: SliceBroker) -> dict:
    submit_barrier = threading.Barrier(SESSIONS)
    release_barrier = threading.Barrier(SESSIONS)
    sessions = [
        _Session(index, server, submit_barrier, release_barrier)
        for index in range(SESSIONS)
    ]
    threads = [
        threading.Thread(target=session.run, name=session.name, daemon=True)
        for session in sessions
    ]
    with BrokerClient(server.host, server.port) as admin:
        # The admitted cohort competes at epoch 0 through a real MILP solve.
        admin.submit_batch(
            [
                SliceRequestV1.of(f"cohort-{i}", "uRLLC", duration_epochs=4)
                for i in range(ADMITTED_COHORT)
            ]
        )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        failures = [s.error for s in sessions if s.error is not None]
        assert not failures, f"{len(failures)} sessions failed; first: {failures[0]!r}"

        # Zero dropped: every session holds a queued ticket...
        assert all(s.queued_state == "queued" for s in sessions)
        # ...zero duplicated: ids unique, replays bit-identical.
        ticket_ids = {s.ticket.ticket_id for s in sessions}
        assert len(ticket_ids) == SESSIONS
        assert all(s.replay == s.ticket for s in sessions)
        assert all(s.released_state == "released" for s in sessions)
        # Only the epoch-0 cohort remains queued after the release wave.
        assert broker.pending_count == ADMITTED_COHORT

        report = admin.advance_epoch(0)
        assert len(report.accepted) + len(report.rejected) == ADMITTED_COHORT
        assert broker.pending_count == 0

        # Events-delivered SLO: exactly one RELEASED event per session (and
        # the cohort's admission events), each delivered exactly once
        # through the cursor-paged feed.
        delivered: list = []
        cursor = 0
        while True:
            page = admin.events(cursor, limit=500)
            delivered.extend(event for _, event in page)
            if page.next_cursor == cursor:
                break
            cursor = page.next_cursor
    released = [e for e in delivered if e.kind is LifecycleEventKind.RELEASED]
    assert len({e.slice_name for e in released}) == len(released)
    events_delivered_ratio = len(released) / SESSIONS

    submit_ms = [s.submit_s * 1e3 for s in sessions]
    release_ms = [s.release_s * 1e3 for s in sessions]
    return {
        "sessions": SESSIONS,
        "dropped_tickets": SESSIONS - sum(1 for s in sessions if s.ticket),
        "duplicated_tickets": SESSIONS - len(ticket_ids),
        "events_delivered_ratio": events_delivered_ratio,
        "admission_p50_ms": percentile(submit_ms, 0.50),
        "admission_p99_ms": percentile(submit_ms, 0.99),
        "admission_mean_ms": statistics.fmean(submit_ms),
        "release_p50_ms": percentile(release_ms, 0.50),
        "release_p99_ms": percentile(release_ms, 0.99),
    }


def test_transport_multi_tenant_load(benchmark):
    """>= 1000 concurrent tenant sessions, zero dropped/duplicated tickets,
    all RELEASED events delivered, p50/p99 admission latency recorded."""
    broker, server = make_server()
    with server:
        slo = benchmark.pedantic(run_load, args=(server, broker), rounds=1, iterations=1)
    assert slo["dropped_tickets"] == 0
    assert slo["duplicated_tickets"] == 0
    assert slo["events_delivered_ratio"] == pytest.approx(1.0)
    benchmark.extra_info.update(slo)


def test_transport_roundtrip_latency(benchmark):
    """Sequential request/response floor of the wire (one quiet session)."""
    broker, server = make_server()
    rounds = 200
    with server:
        with BrokerClient(server.host, server.port) as client:
            client.submit(SliceRequestV1.of("warm", "mMTC", arrival_epoch=1))

            def roundtrips():
                samples = []
                for _ in range(rounds):
                    started = time.perf_counter()
                    client.status("warm")
                    samples.append(time.perf_counter() - started)
                return samples

            samples = benchmark.pedantic(roundtrips, rounds=1, iterations=1)
    latencies_ms = [s * 1e3 for s in samples]
    benchmark.extra_info.update(
        {
            "rounds": rounds,
            "status_p50_ms": percentile(latencies_ms, 0.50),
            "status_p99_ms": percentile(latencies_ms, 0.99),
        }
    )


# --------------------------------------------------------------------- #
# Replay-cache eviction guard (satellite: O(overflow), not O(queue+cache))
# --------------------------------------------------------------------- #
def overfull_broker(cache_limit: int, stale_entries: int) -> SliceBroker:
    """A broker whose replay cache holds ``stale_entries`` evictable tokens.

    The stale entries are synthesised directly (their slices already left
    the intake queue), so the guard isolates eviction cost from solver and
    epoch machinery.
    """
    broker = SliceBroker(
        topology=operators.testbed_topology(),
        solver=DirectMILPSolver(),
        cache_limit=cache_limit,
    )
    descriptor = SliceDescriptor.from_request(
        SliceRequestV1.of("stale", "mMTC").to_request()
    )
    for index in range(stale_entries):
        token = f"stale-{index:06d}"
        ticket = AdmissionTicket(
            ticket_id=f"tkt-stale-{index:06d}",
            slice_name=f"stale-{index:06d}",
            arrival_epoch=0,
            descriptor=descriptor,
            client_token=token,
        )
        broker._tickets_by_token[token] = ("fp", ticket)
    return broker


def timed_submits(broker: SliceBroker, count: int, prefix: str) -> float:
    started = time.perf_counter()
    for index in range(count):
        broker.submit(
            SliceRequestV1.of(f"{prefix}-{index:05d}", "mMTC", arrival_epoch=9),
            client_token=f"{prefix}-tok-{index:05d}",
        )
    return (time.perf_counter() - started) / count


def test_replay_cache_eviction_cost_is_flat(benchmark):
    """Per-submit cost with a 32x larger over-full cache stays flat.

    Every submit below lands in an over-limit cache and evicts exactly one
    stale entry; the old implementation rescanned the whole token dict and
    rebuilt the pending-name set per call, scaling the submit with the
    cache size instead of the overflow.
    """
    small, large = 1024, 32768
    submits = 512

    small_broker = overfull_broker(cache_limit=small, stale_entries=small + submits)
    per_submit_small = timed_submits(small_broker, submits, "warm")

    large_broker = overfull_broker(cache_limit=large, stale_entries=large + submits)
    per_submit_large = benchmark.pedantic(
        timed_submits, args=(large_broker, submits, "load"), rounds=1, iterations=1
    )

    # Both caches end exactly at their limit (one stale eviction per submit,
    # queued tokens spared) -- the no-behavior-change half of the guard.
    assert len(small_broker._tickets_by_token) == small
    assert len(large_broker._tickets_by_token) == large
    ratio = per_submit_large / per_submit_small
    assert ratio < 5.0, (
        f"eviction cost grew with cache size: {per_submit_small * 1e6:.1f}us -> "
        f"{per_submit_large * 1e6:.1f}us per submit ({ratio:.1f}x)"
    )
    benchmark.extra_info.update(
        {
            "per_submit_small_cache_us": per_submit_small * 1e6,
            "per_submit_large_cache_us": per_submit_large * 1e6,
            "cache_ratio": large / small,
            "cost_ratio": ratio,
        }
    )
