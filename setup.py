from setuptools import find_packages, setup

setup(
    name="repro-conext18-overbooking",
    version="0.2.0",
    description=(
        "Reproduction of 'Overbooking network slices through yield-driven "
        "end-to-end orchestration' (CoNEXT'18)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro-experiments = repro.experiments.cli:main",
        ]
    },
)
