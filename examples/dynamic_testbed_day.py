#!/usr/bin/env python3
"""Replay the paper's proof-of-concept testbed day (Fig. 8).

Nine slice requests (three uRLLC, three mMTC, three eMBB) arrive every two
hours starting at 06:00 on a two-base-station testbed with a 16-CPU edge
cloud and a 64-CPU core cloud.  The orchestrator learns each slice's load
online and adapts reservations, which lets it admit slices the no-overbooking
baseline has to reject.

Run with:  python examples/dynamic_testbed_day.py
"""

from repro.experiments.fig8_testbed import run_fig8


def main(num_epochs: int = 18, seed: int = 3) -> None:
    """Replay the testbed day; ``num_epochs`` shrinks it for smoke tests."""
    result = run_fig8(policies=("optimal", "no-overbooking"), num_epochs=num_epochs, seed=seed)

    print("Admission outcome")
    print("-" * 60)
    for policy in result.policies():
        admitted = ", ".join(result.admitted(policy)) or "(none)"
        rejected = ", ".join(result.rejected(policy)) or "(none)"
        print(f"{policy:>15}: admitted  {admitted}")
        print(f"{'':>15}  rejected  {rejected}")

    print("\nCumulative net revenue over the day (Fig. 8a)")
    print("-" * 60)
    timelines = {policy: dict(result.revenue_timeline(policy)) for policy in result.policies()}
    hours = [hour for hour, _ in result.revenue_timeline("optimal")]
    print(f"{'hour':<7} {'overbooking':>12} {'no-overbooking':>15}")
    for hour in hours:
        print(
            f"{hour:<7} {timelines['optimal'][hour]:>12.2f} "
            f"{timelines['no-overbooking'][hour]:>15.2f}"
        )

    print("\nEdge compute unit: reservation vs utilisation (Fig. 8d)")
    print("-" * 60)
    timeline = result.domain_timeline("optimal", "compute")["edge-cu"]
    print(f"{'hour':<7} {'reserved CPUs':>14} {'used CPUs':>10}")
    for hour, reserved, used in timeline:
        print(f"{hour:<7} {reserved:>14.1f} {used:>10.1f}")


if __name__ == "__main__":
    main()
