#!/usr/bin/env python3
"""Online forecasting driving orchestration decisions.

The script builds a seasonal (diurnal) demand trace for one slice, shows how
the multiplicative Holt-Winters forecaster tracks it compared to simpler
predictors, and then demonstrates the full control loop: an orchestrator that
initially reserves the full SLA for a new slice and relaxes the reservation
once monitoring data arrives, freeing room for further slices.

Run with:  python examples/forecasting_and_orchestration.py
"""

import numpy as np

from repro.api import SliceBroker, SliceRequestV1
from repro.controlplane.orchestrator import OrchestratorConfig
from repro.core.milp_solver import DirectMILPSolver
from repro.core.slices import URLLC_TEMPLATE
from repro.forecasting import (
    DoubleExponentialForecaster,
    HoltWintersForecaster,
    NaiveForecaster,
)
from repro.topology.operators import testbed_topology
from repro.traffic.patterns import DemandSpec, demand_for_template

EPOCHS_PER_DAY = 24


def forecasting_demo(num_days: int = 4) -> None:
    print("Forecasting a diurnal slice load (one-step-ahead, last day)")
    print("-" * 64)
    num_days = max(3, num_days)
    demand = demand_for_template(
        URLLC_TEMPLATE,
        DemandSpec(mean_fraction=0.5, relative_std=0.15, seasonal=True),
        seed=42,
    )
    peaks = demand.peak_series(num_days * EPOCHS_PER_DAY, samples_per_epoch=12)

    forecasters = {
        "holt-winters": HoltWintersForecaster(season_length=EPOCHS_PER_DAY),
        "double-exp": DoubleExponentialForecaster(),
        "naive": NaiveForecaster(),
    }
    errors = {name: [] for name in forecasters}
    for t in range((num_days - 1) * EPOCHS_PER_DAY, num_days * EPOCHS_PER_DAY):
        history, truth = peaks[:t], peaks[t]
        for name, forecaster in forecasters.items():
            prediction = forecaster.forecast(history).next_value
            errors[name].append(abs(prediction - truth) / truth)
    for name, errs in errors.items():
        print(f"  {name:<14} mean absolute percentage error: {100 * np.mean(errs):5.1f}%")
    print()


def orchestration_demo(num_epochs: int = 4) -> None:
    print("Adaptive reservations make room for more slices")
    print("-" * 64)
    broker = SliceBroker(
        topology=testbed_topology(),
        solver=DirectMILPSolver(),
        config=OrchestratorConfig(epochs_per_day=EPOCHS_PER_DAY, samples_per_epoch=12),
    )
    # Lifecycle events arrive through the bus -- no registry polling.
    broker.events.subscribe(
        lambda event: print(f"    event: {event.kind.value} {event.slice_name} @ epoch {event.epoch}")
    )
    # Northbound submission: versioned DTOs, deferred arrival for uRLLC-B.
    broker.submit_batch(
        [
            SliceRequestV1.of("uRLLC-A", "uRLLC", arrival_epoch=0),
            SliceRequestV1.of("uRLLC-B", "uRLLC", arrival_epoch=2),
        ]
    )

    demand = demand_for_template(
        URLLC_TEMPLATE, DemandSpec(mean_fraction=0.4, relative_std=0.1), seed=7
    )
    for epoch in range(num_epochs):
        report = broker.advance_epoch(epoch)
        admitted = ", ".join(report.accepted) or "(none)"
        reservations = {
            name: round(broker.status(name).reservations_mbps.get("bs-0", 0.0), 1)
            for name in report.accepted
        }
        print(f"  epoch {epoch}: admitted [{admitted}] reservations at bs-0: {reservations}")
        # Feed monitoring data for whatever is admitted so the next epoch can adapt.
        for name in report.accepted:
            samples = demand.sample_epoch(epoch, 12).samples_mbps
            for bs in ("bs-0", "bs-1"):
                broker.report_load(name, bs, epoch, list(samples))
    print()
    print(
        "  uRLLC-B only fits once uRLLC-A's measured load (≈10 Mb/s) lets the\n"
        "  orchestrator shrink its CPU reservation on the 16-core edge cloud."
    )


def main(num_days: int = 4, num_epochs: int = 4) -> None:
    forecasting_demo(num_days=num_days)
    orchestration_demo(num_epochs=num_epochs)


if __name__ == "__main__":
    main()
