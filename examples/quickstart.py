#!/usr/bin/env python3
"""Quickstart: admit a handful of slices on a small network, with and without
overbooking.

This walks through the core public API in five steps:

1. build a topology (two base stations, an edge and a core cloud),
2. enumerate candidate paths,
3. describe the slice requests (Table 1 templates) and their demand forecasts,
4. build the AC-RR problem and solve it with the optimal solver and with the
   no-overbooking baseline,
5. compare admissions, reservations and expected revenue.

Run with:  python examples/quickstart.py
"""

from repro.core.forecast_inputs import ForecastInput
from repro.core.milp_solver import DirectMILPSolver
from repro.core.baseline import NoOverbookingSolver
from repro.core.problem import ACRRProblem
from repro.core.slices import EMBB_TEMPLATE, URLLC_TEMPLATE, make_requests
from repro.topology.elements import (
    BaseStation,
    ComputeUnit,
    ComputeUnitKind,
    TransportLink,
    TransportSwitch,
)
from repro.topology.network import NetworkTopology
from repro.topology.paths import compute_path_sets


def build_small_network() -> NetworkTopology:
    """Two 20 MHz base stations behind one switch, edge + core clouds."""
    topology = NetworkTopology(name="quickstart")
    topology.add_switch(TransportSwitch(name="switch"))
    topology.add_compute_unit(
        ComputeUnit(name="edge-cu", capacity_cpus=32.0, kind=ComputeUnitKind.EDGE)
    )
    topology.add_compute_unit(
        ComputeUnit(
            name="core-cu",
            capacity_cpus=128.0,
            kind=ComputeUnitKind.CORE,
            access_latency_ms=20.0,
        )
    )
    for i in range(2):
        topology.add_base_station(BaseStation(name=f"bs-{i}", capacity_mhz=20.0))
        topology.add_link(
            TransportLink(endpoint_a=f"bs-{i}", endpoint_b="switch", capacity_mbps=1000.0)
        )
    topology.add_link(
        TransportLink(endpoint_a="switch", endpoint_b="edge-cu", capacity_mbps=1000.0)
    )
    topology.add_link(
        TransportLink(endpoint_a="switch", endpoint_b="core-cu", capacity_mbps=1000.0)
    )
    topology.validate()
    return topology


def main() -> None:
    topology = build_small_network()
    path_set = compute_path_sets(topology, k=3)
    print(f"Topology: {topology}")
    print(f"Candidate paths: {len(path_set)} (mean {path_set.mean_paths_per_pair():.1f} per BS-CU pair)\n")

    # Six broadband tenants and two low-latency tenants ask for slices.  Their
    # forecasted peak load is well below the contracted SLA -- the overbooking
    # opportunity.
    requests = make_requests(EMBB_TEMPLATE, 6) + make_requests(URLLC_TEMPLATE, 2)
    forecasts = {
        request.name: ForecastInput(
            lambda_hat_mbps=0.25 * request.sla_mbps, sigma_hat=0.25
        )
        for request in requests
    }
    problem = ACRRProblem(topology, path_set, requests, forecasts)

    overbooking = DirectMILPSolver().solve(problem)
    baseline = NoOverbookingSolver().solve(problem)

    print(f"{'policy':<16} {'admitted':>9} {'expected reward':>16}")
    print("-" * 45)
    for label, decision in (("overbooking", overbooking), ("no-overbooking", baseline)):
        print(f"{label:<16} {decision.num_accepted:>9} {decision.expected_reward:>16.2f}")

    print("\nPer-slice outcome under overbooking:")
    for name, alloc in sorted(overbooking.allocations.items()):
        if alloc.accepted:
            reservation = alloc.reservations_mbps[topology.base_station_names[0]]
            print(
                f"  {name:<10} admitted on {alloc.compute_unit:<8} "
                f"reserving {reservation:5.1f} of {alloc.request.sla_mbps:5.1f} Mb/s per site"
            )
        else:
            print(f"  {name:<10} rejected")


if __name__ == "__main__":
    main()
