#!/usr/bin/env python3
"""Revenue sweep across the three operator networks (a miniature Fig. 5).

For each synthetic operator network (Romanian, Swiss, Italian) the script
sweeps the mean slice load ``alpha`` and compares the net revenue of the
overbooking orchestrator against the no-overbooking baseline, printing the
relative gain -- the quantity plotted in Fig. 5 of the paper.

Run with:  python examples/operator_revenue_sweep.py
"""

from repro.core.slices import EMBB_TEMPLATE
from repro.simulation.runner import compare_policies
from repro.simulation.scenario import homogeneous_scenario
from repro.utils.stats import relative_gain

OPERATORS = ("romanian", "swiss", "italian")
ALPHAS = (0.2, 0.5, 0.8)
NUM_BASE_STATIONS = 6
NUM_TENANTS = {"romanian": 8, "swiss": 8, "italian": 12}


def main(
    operators: tuple[str, ...] = OPERATORS,
    alphas: tuple[float, ...] = ALPHAS,
    num_base_stations: int = NUM_BASE_STATIONS,
    num_epochs: int = 3,
) -> None:
    """Run the sweep; the keyword knobs shrink it for smoke tests."""
    print(
        f"{'operator':<10} {'alpha':>5} {'overbooking':>12} {'baseline':>9} "
        f"{'gain %':>8} {'admitted':>9} {'violations':>11}"
    )
    print("-" * 70)
    for operator in operators:
        for alpha in alphas:
            scenario = homogeneous_scenario(
                operator=operator,
                template=EMBB_TEMPLATE,
                num_tenants=NUM_TENANTS[operator],
                mean_load_fraction=alpha,
                relative_std=0.25,
                penalty_factor=1.0,
                num_epochs=num_epochs,
                num_base_stations=num_base_stations,
                seed=1,
            )
            results = compare_policies(scenario, policies=("optimal", "no-overbooking"))
            optimal = results["optimal"]
            baseline = results["no-overbooking"]
            gain = relative_gain(optimal.net_revenue, baseline.net_revenue)
            print(
                f"{operator:<10} {alpha:>5.2f} {optimal.net_revenue:>12.2f} "
                f"{baseline.net_revenue:>9.2f} {gain:>8.1f} "
                f"{optimal.num_admitted:>4d}/{len(scenario.workloads):<4d} "
                f"{optimal.violation_probability:>11.6f}"
            )
        print()


if __name__ == "__main__":
    main()
