#!/usr/bin/env python3
"""Tour of the northbound SliceBroker service API.

Walks through the whole tenant-facing surface on a small testbed:

1. versioned DTOs (``SliceRequestV1`` payloads survive a JSON round trip),
2. idempotent and batch submission with client tokens,
3. non-binding quotes,
4. decision epochs returning ``EpochReport`` DTOs,
5. the lifecycle event bus (admitted / rejected / expired / renewed /
   released, delivered in deterministic order),
6. the structured error taxonomy (every failure is a ``BrokerError`` subclass
   with a stable ``code``).

Run with:  python examples/slice_broker_tour.py
"""

import json

from repro.api import (
    BrokerError,
    SliceBroker,
    SliceRequestV1,
)
from repro.core.milp_solver import DirectMILPSolver
from repro.topology.operators import testbed_topology


def main(num_epochs: int = 6) -> None:
    broker = SliceBroker(topology=testbed_topology(), solver=DirectMILPSolver())

    print("Lifecycle events (subscribed, not polled)")
    print("-" * 64)
    broker.events.subscribe(
        lambda event: print(f"  [{event.epoch}] {event.kind.value:<9} {event.slice_name}")
    )

    # --- 1. DTOs survive the wire ------------------------------------- #
    request = SliceRequestV1.of("uRLLC-A", "uRLLC", duration_epochs=3)
    payload = json.dumps(request.to_dict(), sort_keys=True)
    decoded = SliceRequestV1.from_dict(json.loads(payload))
    assert decoded == request
    print(f"  wire payload carries schema_version={request.to_dict()['schema_version']}")

    # --- 2. Batch + idempotent submission ------------------------------ #
    tickets = broker.submit_batch(
        [
            decoded,
            SliceRequestV1.of("mMTC-A", "mMTC", duration_epochs=4),
            SliceRequestV1.of("eMBB-late", "eMBB", duration_epochs=2, arrival_epoch=2),
        ],
        client_tokens=["tok-a", "tok-b", "tok-c"],
    )
    replay = broker.submit(decoded, client_token="tok-a")  # lost-response retry
    assert replay == tickets[0]
    print(f"  batch accepted: {[t.ticket_id for t in tickets]} (tok-a replay deduplicated)")

    # --- 3. Quotes ------------------------------------------------------ #
    quote = broker.quote(SliceRequestV1.of("probe", "eMBB"))
    print(
        f"  quote for eMBB probe: forecast {quote.forecast_peak_mbps:.1f} Mb/s "
        f"(sigma {quote.forecast_sigma:.2f}), reward {quote.reward_per_epoch:.1f}/epoch"
    )

    # --- 4 + 5. Epochs, reports and events ------------------------------ #
    print("\nDecision epochs")
    print("-" * 64)
    for epoch in range(num_epochs):
        report = broker.advance_epoch(epoch)
        print(
            f"  epoch {epoch}: accepted={list(report.accepted)} "
            f"active={list(report.active)} pending={report.pending_requests} "
            f"solver={report.solver or '-'}"
        )
        if epoch == 1:
            # Tenant-initiated early release frees mMTC-A's reservations.
            broker.release("mMTC-A", epoch=epoch)

    # --- 6. Error taxonomy ---------------------------------------------- #
    print("\nError taxonomy (stable codes)")
    print("-" * 64)
    failures = [
        ("malformed payload", lambda: broker.submit({"name": "broken"})),
        ("duplicate queued name", lambda: _double_submit(broker)),
        ("release of unknown slice", lambda: broker.release("ghost", epoch=0)),
    ]
    for label, failure in failures:
        try:
            failure()
        except BrokerError as error:
            print(f"  {label:<26} -> {type(error).__name__} (code={error.code!r})")

    print("\nFinal slice statuses")
    print("-" * 64)
    for status in broker.list_slices():
        print(f"  {status.name:<10} {status.state}")


def _double_submit(broker: SliceBroker) -> None:
    request = SliceRequestV1.of("dup", "eMBB", arrival_epoch=99)
    broker.submit(request)
    try:
        broker.submit(request)  # same name still queued -> duplicate
    finally:
        broker.release("dup", epoch=0)  # withdraw the queued request again


if __name__ == "__main__":
    main()
